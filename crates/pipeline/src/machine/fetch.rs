//! Fetch stage: ICOUNT thread selection, branch prediction, I-cache timing.

use super::{StagedCore, FETCH_BUFFER_CAP, IADDR_BASE};
use crate::context::FetchedInst;
use crate::framework::StageSet;
use crate::uop::CtxId;
use mtvp_isa::Op;
use mtvp_obs::{Event, Tracer};

impl<T: Tracer, S: StageSet> StagedCore<'_, T, S> {
    /// Fetch up to `fetch_width` instructions from up to `fetch_threads`
    /// contexts, chosen by ICOUNT (fewest instructions in the front end).
    pub(crate) fn fetch_stage(&mut self) {
        // The candidate list reuses a scratch buffer kept on the machine,
        // so this stage allocates nothing in steady state.
        let mut candidates = std::mem::take(&mut self.scratch_ctxs);
        candidates.clear();
        candidates.extend(
            (0..self.ctxs.len()).filter(|&i| self.ctxs[i].fetchable(self.now, FETCH_BUFFER_CAP)),
        );
        candidates.sort_by_key(|&i| (self.ctxs[i].icount(), i));
        candidates.truncate(self.cfg.fetch_threads);
        if !candidates.is_empty() {
            let per_thread = (self.cfg.fetch_width / candidates.len()).max(1);
            for &ctx in &candidates {
                self.fetch_thread(ctx, per_thread);
            }
        }
        self.scratch_ctxs = candidates;
    }

    /// Fetch up to `budget` sequential instructions for one context.
    fn fetch_thread(&mut self, ctx: CtxId, budget: usize) {
        // I-cache access for the first block of this group. A miss stalls
        // fetch for this thread until the line arrives; an L1 hit's latency
        // is folded into the front-end depth.
        let first_pc = self.ctxs[ctx].pc;
        if self.program.fetch(first_pc).is_none() {
            // Off the end of the text segment (wrong-path fetch): stall
            // until a squash redirects this thread.
            return;
        }
        let access = self
            .mem_sys
            .access_inst(self.now, IADDR_BASE + first_pc * 4);
        if access.ready_at > self.now + self.mem_sys.config().l1_latency {
            self.ctxs[ctx].fetch_ready_at = access.ready_at;
            return;
        }

        for _ in 0..budget {
            if self.ctxs[ctx].fetch_buffer.len() >= FETCH_BUFFER_CAP {
                break;
            }
            let pc = self.ctxs[ctx].pc;
            let inst = match self.program.fetch(pc) {
                Some(i) => *i,
                None => break, // ran off the text segment mid-group
            };

            let ghist_prior = self.ctxs[ctx].ghist;
            let mut pred_next = pc + 1;
            let mut stall_after = false;

            match inst.op {
                Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                    let pred_taken = self.dir_pred.predict(pc, ghist_prior);
                    let c = &mut self.ctxs[ctx];
                    c.ghist = (c.ghist << 1) | pred_taken as u64;
                    if pred_taken {
                        pred_next = inst.imm as u64;
                    }
                }
                Op::J => pred_next = inst.imm as u64,
                Op::Jal => {
                    self.ctxs[ctx].ras.push(pc + 1);
                    pred_next = inst.imm as u64;
                }
                Op::Jr => {
                    // `jr r31` is the return idiom: predict via the RAS.
                    let predicted = if inst.rs1 == 31 {
                        self.ctxs[ctx].ras.pop()
                    } else {
                        self.btb.predict(pc)
                    };
                    match predicted {
                        Some(t) => pred_next = t,
                        None => {
                            // Unknown indirect target: fetch must wait for
                            // the jump to resolve and redirect.
                            stall_after = true;
                        }
                    }
                }
                Op::Jalr => {
                    self.ctxs[ctx].ras.push(pc + 1);
                    match self.btb.predict(pc) {
                        Some(t) => pred_next = t,
                        None => stall_after = true,
                    }
                }
                Op::Halt => {
                    // Nothing should be fetched past a halt.
                    stall_after = true;
                }
                _ => {}
            }

            let c = &mut self.ctxs[ctx];
            let entry = FetchedInst {
                inst,
                pc,
                ready_at: self.now + self.cfg.front_end_latency,
                trace_idx: c.trace_cursor,
                pred_next,
                ghist_prior,
                ras_after: c.ras.clone(),
            };
            c.trace_cursor += 1;
            c.pc = pred_next;
            c.fetch_buffer.push_back(entry);
            self.stats.fetched += 1;
            if T::ENABLED {
                self.tracer.record(self.now, Event::Fetch { ctx, pc });
            }

            if stall_after {
                // The thread waits for a resolution-time redirect (indirect
                // jump with unknown target) or is finished (halt).
                self.ctxs[ctx].wait_redirect = true;
                break;
            }
            // A predicted-taken control transfer ends the fetch group (we
            // fetch from at most one line per thread per cycle).
            if pred_next != pc + 1 {
                break;
            }
        }
    }
}
