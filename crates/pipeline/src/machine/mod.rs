//! The SMT out-of-order machine: state, cycle loop, and shared helpers.
//!
//! Stage logic lives in the sibling modules: [`fetch`](self) (ICOUNT fetch
//! with branch prediction), rename/dispatch (including value-prediction
//! decisions and thread spawning), issue/execute/writeback (including
//! branch resolution and selective reissue), and commit (including MTVP
//! verification, thread promotion and kills).
//!
//! Stages run back-to-front each cycle so results never skip a stage
//! within a single cycle.

mod commit;
mod exec;
mod fetch;
mod rename;

use crate::config::{PipelineConfig, PredictorKind, SelectorKind};
use crate::context::{Context, CtxState};
use crate::framework::{InOrderStages, SmtOooStages, Stage, StageSet};
use crate::regfile::{PhysRegFile, RegClass};
use crate::stats::{BranchStats, PipeStats, VpStats};
use crate::uop::{CtxId, UopId, UopSlab};
use mtvp_branch::{Btb, DirectionPredictor};
use mtvp_isa::trace::Trace;
use mtvp_isa::{ExecUnit, Program};
use mtvp_mem::{MainMemory, MemEvent, MemStats, MemSystem};
use mtvp_obs::{Event, KillCause, NullTracer, SquashCause, Tracer};
use mtvp_vp::{
    DfcmPredictor, IlpPred, LastValuePredictor, OraclePredictor, Prediction, PredictorCounters,
    SelectDecision, StridePredictor, ValuePredictor, WangFranklinConfig, WangFranklinPredictor,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Instruction byte addresses live far above data so the I-cache and
/// D-cache never alias (instructions are 4 bytes in the timing model).
pub(crate) const IADDR_BASE: u64 = 0x4000_0000_0000;

/// Per-context fetch-buffer capacity (decouples fetch from rename).
pub(crate) const FETCH_BUFFER_CAP: usize = 48;

/// Watchdog: a machine that commits nothing for this many cycles is wedged.
pub(crate) const WATCHDOG_CYCLES: u64 = 2_000_000;

/// An execution-completion event: (finish cycle, uop, slab generation,
/// execution token).
type ExecEvent = Reverse<(u64, UopId, u32, u32)>;

/// Dispatch wrapper over the concrete value predictors.
pub(crate) enum AnyPredictor {
    /// No prediction.
    None,
    /// Trace oracle.
    Oracle(OraclePredictor),
    /// Wang–Franklin hybrid.
    Wf(WangFranklinPredictor),
    /// Order-3 DFCM.
    Dfcm(DfcmPredictor),
    /// Stride.
    Stride(StridePredictor),
    /// Last value.
    LastValue(LastValuePredictor),
}

impl AnyPredictor {
    fn from_config(cfg: &PipelineConfig, trace: Option<Arc<Trace>>) -> Self {
        match cfg.vp.predictor {
            PredictorKind::None => AnyPredictor::None,
            PredictorKind::Oracle => AnyPredictor::Oracle(OraclePredictor::new(
                trace.expect("oracle predictor requires a committed-path trace"),
            )),
            PredictorKind::WangFranklin => {
                AnyPredictor::Wf(WangFranklinPredictor::new(cfg.vp.wang_franklin))
            }
            PredictorKind::WangFranklinLiberal => {
                AnyPredictor::Wf(WangFranklinPredictor::new(WangFranklinConfig {
                    confidence: mtvp_vp::ConfidenceConfig::liberal(),
                    ..cfg.vp.wang_franklin
                }))
            }
            PredictorKind::Dfcm => AnyPredictor::Dfcm(DfcmPredictor::new(cfg.vp.dfcm)),
            PredictorKind::Stride => AnyPredictor::Stride(StridePredictor::new(
                cfg.vp.simple_entries,
                mtvp_vp::ConfidenceConfig::hpca2005(),
            )),
            PredictorKind::LastValue => AnyPredictor::LastValue(LastValuePredictor::new(
                cfg.vp.simple_entries,
                mtvp_vp::ConfidenceConfig::hpca2005(),
            )),
        }
    }

    /// Query for the load at `pc` believed to be at committed-path index
    /// `trace_idx`.
    pub(crate) fn predict(&mut self, trace_idx: u64, pc: u64) -> Prediction {
        match self {
            AnyPredictor::None => Prediction::none(),
            AnyPredictor::Oracle(o) => match o.predict_at(trace_idx, pc) {
                Some(v) => Prediction {
                    primary: Some(mtvp_vp::Predicted {
                        value: v,
                        confident: true,
                    }),
                    alternates: vec![],
                },
                None => Prediction::none(),
            },
            AnyPredictor::Wf(p) => p.predict(pc),
            AnyPredictor::Dfcm(p) => p.predict(pc),
            AnyPredictor::Stride(p) => p.predict(pc),
            AnyPredictor::LastValue(p) => p.predict(pc),
        }
    }

    pub(crate) fn spec_update(&mut self, pc: u64, value: u64) {
        match self {
            AnyPredictor::None | AnyPredictor::Oracle(_) => {}
            AnyPredictor::Wf(p) => p.spec_update(pc, value),
            AnyPredictor::Dfcm(p) => p.spec_update(pc, value),
            AnyPredictor::Stride(p) => p.spec_update(pc, value),
            AnyPredictor::LastValue(p) => p.spec_update(pc, value),
        }
    }

    pub(crate) fn train(&mut self, pc: u64, actual: u64) {
        match self {
            AnyPredictor::None | AnyPredictor::Oracle(_) => {}
            AnyPredictor::Wf(p) => p.train(pc, actual),
            AnyPredictor::Dfcm(p) => p.train(pc, actual),
            AnyPredictor::Stride(p) => p.train(pc, actual),
            AnyPredictor::LastValue(p) => p.train(pc, actual),
        }
    }

    fn counters(&self) -> PredictorCounters {
        match self {
            AnyPredictor::None => PredictorCounters::default(),
            AnyPredictor::Oracle(o) => {
                let (q, a) = o.counters();
                PredictorCounters {
                    queries: q,
                    confident: a,
                    trains: 0,
                }
            }
            AnyPredictor::Wf(p) => p.counters(),
            AnyPredictor::Dfcm(p) => p.counters(),
            AnyPredictor::Stride(p) => p.counters(),
            AnyPredictor::LastValue(p) => p.counters(),
        }
    }
}

/// Dispatch wrapper over the load selectors.
pub(crate) enum AnySelector {
    Always,
    Ilp(IlpPred),
    L3Miss,
}

/// The paper's SMT out-of-order MTVP machine: [`StagedCore`] composed
/// with [`SmtOooStages`].
///
/// This is a plain type alias, so every pre-framework call site
/// (`Machine::new`, `Machine::with_tracer`, …) compiles unchanged and
/// monomorphizes to exactly the machine it always did.
pub type Machine<'p, T = NullTracer> = StagedCore<'p, T, SmtOooStages>;

/// The in-order scalar baseline core: [`StagedCore`] composed with
/// [`InOrderStages`]. Single context, strict program-order scalar issue,
/// no value prediction — same front end, memory hierarchy and retirement
/// as the SMT core.
pub type InOrderMachine<'p, T = NullTracer> = StagedCore<'p, T, InOrderStages>;

/// The SMT out-of-order core with the hint-guided spawn policy:
/// [`StagedCore`] composed with
/// [`SmtOooStaticHintStages`](crate::framework::SmtOooStaticHintStages).
/// Identical to [`Machine`] except loads outside `VpConfig::hinted_pcs`
/// never consult the value predictor or spawn.
pub type StaticHintMachine<'p, T = NullTracer> =
    StagedCore<'p, T, crate::framework::SmtOooStaticHintStages>;

/// The simulated machine, borrowing the program it runs.
///
/// The machine is generic over its [`Tracer`] and its [`StageSet`]. The
/// default tracer, [`NullTracer`], compiles every emit site away (each is
/// guarded by the associated constant `T::ENABLED`), so untraced
/// simulation is bit-identical in both statistics and throughput to a
/// build without observability at all. The stage set statically selects
/// the stage modules the cycle loop dispatches to (see
/// [`crate::framework`]); [`Machine`] and [`InOrderMachine`] are the two
/// shipped compositions.
pub struct StagedCore<'p, T: Tracer = NullTracer, S: StageSet = SmtOooStages> {
    pub(crate) cfg: PipelineConfig,
    pub(crate) program: &'p Program,
    /// Timing side of the memory hierarchy.
    pub(crate) mem_sys: MemSystem,
    /// Architectural data memory.
    pub(crate) memory: MainMemory,
    pub(crate) rf: PhysRegFile,
    pub(crate) ctxs: Vec<Context>,
    pub(crate) uops: UopSlab,
    /// Issue queues: (uop, generation) pairs; dead entries purged lazily.
    pub(crate) iq: Vec<(UopId, u32)>,
    pub(crate) fq: Vec<(UopId, u32)>,
    pub(crate) mq: Vec<(UopId, u32)>,
    pub(crate) events: BinaryHeap<ExecEvent>,
    pub(crate) dir_pred: DirectionPredictor,
    pub(crate) btb: Btb,
    pub(crate) predictor: AnyPredictor,
    pub(crate) selector: AnySelector,
    pub(crate) trace: Option<Arc<Trace>>,
    pub(crate) now: u64,
    pub(crate) next_seq: u64,
    /// Processor-wide issued-instruction counter (ILP-pred's progress).
    pub(crate) issued_total: u64,
    pub(crate) stats: PipeStats,
    pub(crate) done: bool,
    /// The current architectural (non-speculative) context.
    pub(crate) root_ctx: CtxId,
    /// Round-robin cursor for rename/commit fairness.
    pub(crate) rr_cursor: usize,
    /// While a selective reissue is in progress, the misverified load that
    /// started it (it must not re-execute itself).
    pub(crate) reissue_origin: Option<UopId>,
    last_commit_cycle: u64,
    /// Reusable issue-stage scratch: ready candidates of the unit being
    /// scanned (capacity persists across cycles).
    pub(crate) scratch_ready: Vec<(u64, UopId)>,
    /// Reusable fetch-stage scratch: ICOUNT-sorted fetch candidates.
    pub(crate) scratch_ctxs: Vec<CtxId>,
    /// Event sink; [`NullTracer`] by default (zero cost).
    pub(crate) tracer: T,
    /// Per-pc spawn-hint mask lowered from `VpConfig::hinted_pcs` at
    /// build time; consulted by `StaticHintSpawn` (O(1), no hashing).
    pub(crate) hint_mask: Vec<bool>,
    /// Zero-sized marker binding the machine to its stage set.
    _stages: PhantomData<S>,
}

/// Snapshot of every observable-progress indicator of the machine, taken
/// before and after a cycle by [`Machine::run`]. Two equal marks mean the
/// cycle was fully idle: no stage fetched, renamed, issued, completed,
/// committed, squashed or touched the memory hierarchy, so every later
/// cycle is identical until the next scheduled event fires.
///
/// Deliberately excluded: `now` (always advances), `rr_cursor` (advances
/// unconditionally every cycle; a fast-forward jump replays the skipped
/// advances), and `stats.idle_cycles` (the counter this mechanism itself
/// maintains).
#[derive(PartialEq, Eq)]
struct ProgressMark {
    fetched: u64,
    issued: u64,
    committed: u64,
    squashed: u64,
    discarded: u64,
    halted: bool,
    vp: VpStats,
    branches: BranchStats,
    mem: MemStats,
    mem_words: (u64, u64),
    events: usize,
    iq: usize,
    fq: usize,
    mq: usize,
    rob: usize,
    fetch_buffered: usize,
    store_buffered: usize,
    lsq: usize,
    active: usize,
    last_commit: u64,
    done: bool,
    next_seq: u64,
    issued_total: u64,
    free_int: usize,
    free_fp: usize,
    reissue_origin: Option<UopId>,
}

/// Walk the program's initialized data image through the cache tags —
/// the state after a fast-forward phase of a SimPoint-sampled run.
///
/// Only the tail of the walk can survive in an LRU cache: once a set
/// absorbs a full complement of distinct fills, whatever it held before
/// is gone. Skipping all but the last 2×capacity lines of the walk is
/// therefore bit-exact (the 2× margin guarantees every set sees at least
/// `assoc` fills even when segment boundaries skew the set rotation) and
/// keeps construction O(cache) instead of O(image) — constant-data
/// images run to tens of MiB.
///
/// Called from `build`, and again by [`StagedCore::attach_shared_l3`]
/// so the shared array holds the same image tail a private LLC would.
fn warm_data_image(mem_sys: &mut MemSystem, program: &Program) {
    let mem_cfg = *mem_sys.config();
    let line = mem_cfg.line_bytes;
    let seg_lines = |seg: &mtvp_isa::DataSegment| {
        let start = seg.base & !(line - 1);
        let end = seg.base + seg.bytes.len() as u64;
        end.saturating_sub(start).div_ceil(line)
    };
    let total: u64 = program.data.iter().map(&seg_lines).sum();
    let keep = 2 * [mem_cfg.l1d, mem_cfg.l2, mem_cfg.l3]
        .iter()
        .map(|g| g.size_bytes / g.line_bytes)
        .max()
        .expect("three levels");
    let mut skip = total.saturating_sub(keep);
    for seg in &program.data {
        let n = seg_lines(seg);
        if skip >= n {
            skip -= n;
            continue;
        }
        let mut a = (seg.base & !(line - 1)) + skip * line;
        skip = 0;
        let end = seg.base + seg.bytes.len() as u64;
        while a < end {
            mem_sys.warm_line(a);
            a += line;
        }
    }
}

impl<'p, S: StageSet> StagedCore<'p, NullTracer, S> {
    /// Build a machine for `program`. A committed-path `trace` is required
    /// for the oracle predictor and enables commit-time path validation in
    /// every mode.
    pub fn new(cfg: PipelineConfig, program: &'p Program, trace: Option<Arc<Trace>>) -> Self {
        let mem_cfg = mtvp_mem::MemConfig::hpca2005();
        Self::with_mem_config(cfg, mem_cfg, program, trace)
    }

    /// Build a machine with an explicit memory-hierarchy configuration.
    pub fn with_mem_config(
        cfg: PipelineConfig,
        mem_cfg: mtvp_mem::MemConfig,
        program: &'p Program,
        trace: Option<Arc<Trace>>,
    ) -> Self {
        Self::with_tracer(cfg, mem_cfg, program, trace, NullTracer)
    }

    /// Build a machine whose architectural memory will be supplied through
    /// [`Machine::replace_memory`] (the sampled driver's state handoff).
    /// Skips writing the initial data image — the handed-over image
    /// already contains it, and constant-data-heavy workloads carry tens
    /// of MiB — but still warm-starts the caches when configured, exactly
    /// as [`Machine::with_mem_config`] would.
    pub fn for_state_handoff(
        cfg: PipelineConfig,
        mem_cfg: mtvp_mem::MemConfig,
        program: &'p Program,
        trace: Option<Arc<Trace>>,
    ) -> Self {
        Self::build(cfg, mem_cfg, program, trace, NullTracer, false)
    }
}

impl<'p, T: Tracer, S: StageSet> StagedCore<'p, T, S> {
    /// Build a machine that emits lifecycle events into `tracer`.
    pub fn with_tracer(
        cfg: PipelineConfig,
        mem_cfg: mtvp_mem::MemConfig,
        program: &'p Program,
        trace: Option<Arc<Trace>>,
        tracer: T,
    ) -> Self {
        Self::build(cfg, mem_cfg, program, trace, tracer, true)
    }

    pub(crate) fn build(
        cfg: PipelineConfig,
        mem_cfg: mtvp_mem::MemConfig,
        program: &'p Program,
        trace: Option<Arc<Trace>>,
        tracer: T,
        init_memory: bool,
    ) -> Self {
        assert!(cfg.hw_contexts >= 1, "need at least one hardware context");
        let mut memory = MainMemory::new();
        if init_memory {
            program.init_memory(&mut memory);
        }
        // Warm start: the initialized data image passes through the cache
        // hierarchy (LRU keeps its tail resident), as it would be after
        // the fast-forward phase of a SimPoint-sampled simulation.
        let mut mem_sys = MemSystem::new(mem_cfg);
        if T::ENABLED {
            mem_sys.obs_enable();
        }
        if cfg.warm_start {
            warm_data_image(&mut mem_sys, program);
        }
        let mut rf = PhysRegFile::new(cfg.phys_regs_per_class());
        let mut ctxs: Vec<Context> = (0..cfg.total_contexts())
            .map(|_| Context::free(cfg.ras_entries))
            .collect();

        // Context 0 is the initial architectural thread; its maps get fresh
        // zero-valued, ready physical registers.
        let root = &mut ctxs[0];
        root.state = CtxState::Active;
        for slot in 0..32 {
            let ip = rf.alloc(RegClass::Int).expect("initial int regs");
            rf.write(RegClass::Int, ip, 0);
            root.int_map[slot] = ip;
            let fp = rf.alloc(RegClass::Fp).expect("initial fp regs");
            rf.write(RegClass::Fp, fp, 0);
            root.fp_map[slot] = fp;
        }

        let predictor = AnyPredictor::from_config(&cfg, trace.clone());
        let selector = match cfg.vp.selector {
            SelectorKind::Always => AnySelector::Always,
            SelectorKind::IlpPred => AnySelector::Ilp(IlpPred::new(cfg.vp.ilp_pred)),
            SelectorKind::L3MissOracle => AnySelector::L3Miss,
        };

        // Lower the hinted-load list into a per-pc mask once, here in the
        // (cold) constructor, so the per-rename policy check is a plain
        // indexed load.
        let mut hint_mask = vec![false; program.code.len()];
        for &pc in &cfg.vp.hinted_pcs {
            if let Some(slot) = hint_mask.get_mut(pc as usize) {
                *slot = true;
            }
        }

        StagedCore {
            mem_sys,
            memory,
            rf,
            ctxs,
            uops: UopSlab::new(),
            iq: Vec::new(),
            fq: Vec::new(),
            mq: Vec::new(),
            events: BinaryHeap::new(),
            dir_pred: DirectionPredictor::new(cfg.gskew),
            btb: Btb::new(cfg.btb_entries),
            predictor,
            selector,
            trace,
            now: 0,
            next_seq: 1,
            issued_total: 0,
            stats: PipeStats::default(),
            done: false,
            root_ctx: 0,
            rr_cursor: 0,
            reissue_origin: None,
            last_commit_cycle: 0,
            scratch_ready: Vec::new(),
            scratch_ctxs: Vec::new(),
            hint_mask,
            cfg,
            program,
            tracer,
            _stages: PhantomData,
        }
    }

    /// Whether the static spawn-hint analysis selected the load at `pc`.
    #[inline(always)]
    pub(crate) fn hinted(&self, pc: u64) -> bool {
        self.hint_mask.get(pc as usize).copied().unwrap_or(false)
    }

    /// Consume the machine, yielding the tracer (to read its ring and
    /// registry after a run).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Run the machine to completion (halt, instruction limit, or cycle
    /// limit) and return the statistics.
    ///
    /// # Panics
    /// Panics if the machine wedges (no commit for two million cycles) or
    /// if trace validation detects a committed-path divergence — both are
    /// simulator bugs, not program behaviours.
    pub fn run(&mut self) -> PipeStats {
        self.advance_to(u64::MAX);
        self.finalize_stats();
        // A finished machine must account for every physical register:
        // each is either free or referenced by a surviving rename map.
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_regfile() {
            panic!("post-run register-file check failed: {e}");
        }
        self.stats.clone()
    }

    /// The cycle loop shared by [`StagedCore::run`] and
    /// [`StagedCore::run_until_committed`]: step until `done`, the cycle
    /// or instruction limits, or `target` architectural commits.
    fn advance_to(&mut self, target: u64) {
        self.advance_to_inner::<true>(target);
    }

    fn advance_to_inner<const DISPATCH: bool>(&mut self, target: u64) {
        let mut before = self.progress_mark();
        while !self.done && self.stats.committed < target {
            if DISPATCH {
                self.cycle();
            } else {
                self.cycle_hand_wired();
            }
            let after = self.progress_mark();
            if after == before {
                // A fully idle cycle: every context is waiting on an
                // in-flight event (memory fill, execution completion,
                // front-end latency). Count it, and optionally jump
                // straight to the next cycle where anything can happen.
                self.stats.idle_cycles += 1;
                if self.cfg.fast_forward {
                    self.fast_forward_idle();
                }
            }
            before = after;
            if self.now.saturating_sub(self.last_commit_cycle) > WATCHDOG_CYCLES {
                panic!(
                    "machine wedged at cycle {} (committed={}, program={})",
                    self.now, self.stats.committed, self.program.name
                );
            }
            if self.now >= self.cfg.max_cycles {
                break;
            }
            if self.cfg.inst_limit > 0 && self.stats.committed >= self.cfg.inst_limit {
                break;
            }
        }
    }

    /// Run until at least `target` instructions have committed
    /// architecturally (the count may overshoot by up to a commit group
    /// plus a promoted thread's bulk credit), the program halts, or a
    /// configured limit fires. Returns the committed count reached.
    ///
    /// With state injected by [`Machine::load_arch_state`] the count is
    /// absolute (it starts at the injected instruction index), keeping
    /// commit-time trace validation and every trace-indexed structure
    /// consistent across a sampled run's windows.
    pub fn run_until_committed(&mut self, target: u64) -> u64 {
        self.advance_to(target);
        self.stats.committed
    }

    /// Statistics as of the current cycle, with the memory-hierarchy and
    /// predictor counters folded in. Sampled simulation snapshots this at
    /// warm-up end and window end; the field-wise difference is the
    /// window's measurement.
    pub fn stats_now(&mut self) -> PipeStats {
        self.finalize_stats();
        self.stats.clone()
    }

    // ---- CMP lockstep primitives (used by [`crate::CmpMachine`]) -------

    /// Attach this core to a shared last-level cache, replacing its
    /// private L3 for all demand traffic. When warm-starting, the data
    /// image is re-walked so the shared array holds the same tail a
    /// private LLC would after fast-forward; the private L1/L2 re-touch
    /// is a no-op because the walk repeats the exact access sequence, so
    /// their LRU state is unchanged.
    pub fn attach_shared_l3(&mut self, handle: mtvp_mem::SharedL3Handle, asid: u16) {
        self.mem_sys.attach_shared_l3(handle, asid);
        if self.cfg.warm_start {
            warm_data_image(&mut self.mem_sys, self.program);
        }
    }

    /// One lockstep cycle for the CMP driver: simulate a cycle and report
    /// whether it made observable progress. Idle accounting matches the
    /// single-core loop cycle-for-cycle; the *jump* over an idle stretch
    /// is the driver's job, because the next event that matters may
    /// belong to a sibling core.
    pub(crate) fn cmp_step(&mut self) -> bool {
        let before = self.progress_mark();
        self.cycle();
        let progressed = self.progress_mark() != before;
        if !progressed {
            self.stats.idle_cycles += 1;
        }
        progressed
    }

    /// Jump straight to `target` — a cycle the CMP driver chose as the
    /// earliest scheduled event on *any* core — with the same idle-cycle
    /// and round-robin bookkeeping as `fast_forward_idle`.
    pub(crate) fn cmp_fast_forward_to(&mut self, target: u64) {
        if target <= self.now {
            return;
        }
        let skipped = target - self.now;
        self.stats.idle_cycles += skipped;
        let n = self.ctxs.len();
        self.rr_cursor = (self.rr_cursor + (skipped % n as u64) as usize) % n;
        self.now = target;
    }

    /// Cycles since the last architectural commit (the CMP watchdog's
    /// wedge detector, mirroring the single-core loop's check).
    pub(crate) fn cycles_since_commit(&self) -> u64 {
        self.now.saturating_sub(self.last_commit_cycle)
    }

    /// Inject architectural state captured by the functional interpreter:
    /// the next PC, the absolute committed-instruction index, and both
    /// register files. Must be called on a freshly built machine (cycle 0).
    ///
    /// The committed counter and the root context's trace cursor both
    /// start at `committed`, so commit-time trace validation keeps running
    /// in absolute committed-path indices — every detailed window of a
    /// sampled run is verified instruction-for-instruction against the
    /// reference trace, which makes a botched state transfer a loud
    /// simulator panic instead of a silent accuracy loss.
    pub fn load_arch_state(
        &mut self,
        pc: u64,
        committed: u64,
        int_regs: &[u64; 32],
        fp_regs: &[f64; 32],
    ) {
        assert_eq!(self.now, 0, "inject state before running");
        assert_eq!(self.stats.committed, 0, "inject state only once");
        let (int_map, fp_map) = {
            let c = &self.ctxs[self.root_ctx];
            (c.int_map, c.fp_map)
        };
        for i in 0..32 {
            self.rf.write(RegClass::Int, int_map[i], int_regs[i]);
            self.rf.write(RegClass::Fp, fp_map[i], fp_regs[i].to_bits());
        }
        let c = &mut self.ctxs[self.root_ctx];
        c.pc = pc;
        c.trace_cursor = committed;
        self.stats.committed = committed;
    }

    /// Replace the architectural memory image. Must be called before the
    /// first cycle. The sampled driver hands the interpreter's image over
    /// wholesale — `MainMemory` implements [`mtvp_isa::interp::Bus`], so
    /// no page is copied at a window boundary.
    pub fn replace_memory(&mut self, memory: MainMemory) {
        assert_eq!(self.now, 0, "replace memory before running");
        self.memory = memory;
    }

    /// Consume the machine, yielding the architectural memory image — the
    /// return half of the zero-copy handoff with the functional
    /// interpreter. Call [`Machine::drain_to_arch`] first if the machine
    /// may still hold in-flight work.
    pub fn into_memory(self) -> MainMemory {
        self.memory
    }

    /// The architectural memory image, for the functional tier to step on
    /// between the windows of a sampled run — zero-copy in both
    /// directions. Caches track only tags, never data, so mutating memory
    /// while the pipeline is drained cannot corrupt values.
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Fast-forward a drained machine's architectural state: overwrite
    /// the root context's committed registers, PC, and committed count
    /// with the functional tier's state further along the same committed
    /// path. Micro-architectural state survives the jump ("stale state"
    /// warm-up) — caches, branch history, and predictor *confidence* are
    /// keyed by static instruction, so earlier windows' training remains
    /// largely valid across the skipped region. (A machine restarted
    /// cold each window spawns no speculative threads until its
    /// predictors re-train, which inflates sampled Mtvp cycle estimates
    /// by tens of percent.) The value predictor's *bases* are the
    /// exception: last-value and stride state goes stale as values march
    /// on, and a confidently-wrong predictor triggers wrong-spawn squash
    /// storms. So the jump functionally warms the trainer — it replays
    /// every skipped committed load's `(pc, value)` from the trace,
    /// exactly as commit would have. The replay is a pure function of
    /// the trace range, so cold and checkpoint-warm sampled runs warm
    /// identically. Call [`Machine::drain_to_arch`] first.
    pub fn jump_arch_state(
        &mut self,
        pc: u64,
        committed: u64,
        int_regs: &[u64; 32],
        fp_regs: &[f64; 32],
    ) {
        assert!(
            committed >= self.stats.committed,
            "jump must move forward along the committed path"
        );
        debug_assert!(
            self.ctxs[self.root_ctx].rob.is_empty(),
            "drain_to_arch before jumping"
        );
        if let Some(t) = &self.trace {
            for idx in self.stats.committed..committed {
                if let Some(e) = t.get(idx as usize) {
                    if e.is_load {
                        self.predictor.train(u64::from(e.pc), e.load_value);
                    }
                }
            }
        }
        let (int_map, fp_map) = {
            let c = &self.ctxs[self.root_ctx];
            (c.int_map, c.fp_map)
        };
        for i in 0..32 {
            self.rf.write(RegClass::Int, int_map[i], int_regs[i]);
            self.rf.write(RegClass::Fp, fp_map[i], fp_regs[i].to_bits());
        }
        let c = &mut self.ctxs[self.root_ctx];
        c.pc = pc;
        c.trace_cursor = committed;
        self.stats.committed = committed;
        self.note_commit_progress();
    }

    /// Discard every in-flight and speculative instruction, leaving only
    /// architectural state: the committed register files (readable through
    /// [`Machine::arch_int_regs`]), the committed memory image, and the
    /// next PC. The root context is reset to fetch from the next committed
    /// instruction, so the machine can keep running — or hand its state
    /// back to the functional interpreter at the end of a sampled window.
    ///
    /// Speculative stores only ever live in store buffers (never in
    /// memory), so after the drain the memory image is exactly the
    /// committed program state. Requires a committed-path trace (sampled
    /// runs always have one). No-op once the program has halted.
    pub fn drain_to_arch(&mut self) {
        if self.done {
            return;
        }
        let root = self.root_ctx;
        // A dying root waiting on a promotion takes control back: killing
        // the pending child resumes the root at its saved resume point.
        if let Some(child) = self.ctxs[root].pending_child {
            self.kill_subtree(child, KillCause::Drained);
        }
        debug_assert_eq!(self.ctxs[root].state, CtxState::Active);
        // Sequence numbers start at 1, so this squashes the root's entire
        // window, recursively killing every speculative thread (each is
        // reachable through an in-flight load's children list or a
        // `pending_child` link).
        self.squash_younger(root, 0, SquashCause::Drain);
        #[cfg(debug_assertions)]
        for (i, c) in self.ctxs.iter().enumerate() {
            if i == root {
                assert!(c.rob.is_empty() && c.lsq.is_empty() && c.store_buffer.is_empty());
                assert_eq!(c.queued_count, 0, "queued uops survived the drain");
            } else {
                assert_eq!(c.state, CtxState::Free, "ctx{i} survived the drain");
            }
        }
        // Everything scheduled belongs to squashed uops now.
        self.events.clear();
        self.iq.clear();
        self.fq.clear();
        self.mq.clear();
        self.reissue_origin = None;
        // Reset the front end onto the committed path. Branch history and
        // the RAS stay as they are: both are micro-architectural and
        // self-correct.
        let e = self
            .trace
            .as_ref()
            .expect("drain_to_arch requires a committed-path trace")
            .get(self.stats.committed as usize)
            .expect("trace covers the committed path");
        let next_pc = u64::from(e.pc);
        let c = &mut self.ctxs[root];
        c.pc = next_pc;
        c.trace_cursor = self.stats.committed;
        c.fetch_buffer.clear();
        c.fetch_stopped = false;
        c.wait_redirect = false;
        self.note_commit_progress();
    }

    /// Jump from a detected idle cycle to the next cycle at which any
    /// stage can make progress. Bit-identical to stepping cycle-by-cycle:
    /// idle cycles mutate nothing but `now`, the round-robin cursor
    /// (replayed below) and the idle counter (credited in bulk), and the
    /// jump target is clamped so the watchdog and `max_cycles` checks in
    /// [`Machine::run`] fire at exactly the same cycle either way.
    fn fast_forward_idle(&mut self) {
        let cap = self
            .cfg
            .max_cycles
            .min(self.last_commit_cycle.saturating_add(WATCHDOG_CYCLES + 1));
        let target = match self.next_wakeup_cycle() {
            Some(t) => t.min(cap),
            // Nothing scheduled at all: idle straight into the watchdog
            // (or the cycle limit), exactly as stepping would.
            None => cap,
        };
        if target <= self.now {
            return;
        }
        let skipped = target - self.now;
        self.stats.idle_cycles += skipped;
        let n = self.ctxs.len();
        self.rr_cursor = (self.rr_cursor + (skipped % n as u64) as usize) % n;
        self.now = target;
    }

    /// Earliest cycle strictly after `now` at which any scheduled event
    /// lands: an execution completion, a context's front end coming ready,
    /// the head of a fetch buffer maturing, or a memory-hierarchy fill.
    /// A stalled stage with none of these pending (e.g. a wrong-path
    /// context that ran off the text segment) is woken by whichever event
    /// eventually redirects it, so the set above is exhaustive.
    pub(crate) fn next_wakeup_cycle(&self) -> Option<u64> {
        // `now` is the next cycle to execute, so an event due exactly at
        // `now` must be kept (it makes the jump a no-op), not skipped.
        let mut wake: Option<u64> = None;
        let mut note = |t: u64| {
            if t >= self.now {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if let Some(&Reverse((t, _, _, _))) = self.events.peek() {
            note(t);
        }
        for c in &self.ctxs {
            if c.state == CtxState::Free {
                continue;
            }
            note(c.fetch_ready_at);
            note(c.rename_ready_at);
            if let Some(f) = c.fetch_buffer.front() {
                note(f.ready_at);
            }
        }
        // `next_event_cycle` is strict ("after `now`"), so probe from the
        // previous cycle to include fills landing exactly at `now`.
        if let Some(t) = self.mem_sys.next_event_cycle(self.now.saturating_sub(1)) {
            note(t);
        }
        wake
    }

    /// Snapshot the machine's observable-progress indicators (see
    /// [`ProgressMark`]).
    fn progress_mark(&self) -> ProgressMark {
        let mut rob = 0;
        let mut fetch_buffered = 0;
        let mut store_buffered = 0;
        let mut lsq = 0;
        let mut active = 0;
        for c in &self.ctxs {
            if c.state != CtxState::Free {
                active += 1;
            }
            rob += c.rob.len();
            fetch_buffered += c.fetch_buffer.len();
            store_buffered += c.store_buffer.len();
            lsq += c.lsq.len();
        }
        ProgressMark {
            fetched: self.stats.fetched,
            issued: self.stats.issued,
            committed: self.stats.committed,
            squashed: self.stats.squashed,
            discarded: self.stats.discarded_spec_commits,
            halted: self.stats.halted,
            vp: self.stats.vp,
            branches: self.stats.branches,
            mem: self.mem_sys.stats(),
            mem_words: self.memory.access_counts(),
            events: self.events.len(),
            iq: self.iq.len(),
            fq: self.fq.len(),
            mq: self.mq.len(),
            rob,
            fetch_buffered,
            store_buffered,
            lsq,
            active,
            last_commit: self.last_commit_cycle,
            done: self.done,
            next_seq: self.next_seq,
            issued_total: self.issued_total,
            free_int: self.rf.free_count(RegClass::Int),
            free_fp: self.rf.free_count(RegClass::Fp),
            reissue_origin: self.reissue_origin,
        }
    }

    /// Simulate one cycle, dispatching each stage through the stage set.
    ///
    /// Stages run back-to-front (the framework fixes this ordering) so
    /// results never skip a stage within a single cycle. Every `tick` is
    /// a statically-resolved associated-type call — after inlining this
    /// compiles to the same code as [`StagedCore::cycle_hand_wired`].
    pub fn cycle(&mut self) {
        S::Writeback::tick(self);
        S::Commit::tick(self);
        S::Issue::tick(self);
        S::Rename::tick(self);
        S::Fetch::tick(self);
        self.cycle_tail();
    }

    /// Simulate one cycle with the stage calls written out by hand — the
    /// exact pre-framework loop, kept as the differential reference for
    /// the framework seams. Only reachable through
    /// [`Machine::run_hand_wired`], because it is hand-wired to the
    /// default out-of-order stage methods regardless of `S`.
    pub(crate) fn cycle_hand_wired(&mut self) {
        self.writeback_stage();
        self.commit_stage();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.cycle_tail();
    }

    /// The per-cycle epilogue shared by both cycle entry points: trace
    /// sampling, invariant sweep, clock advance, peak-context tracking.
    fn cycle_tail(&mut self) {
        if T::ENABLED {
            // Queue-occupancy sample (folded into histograms by the
            // tracer, not stored per cycle) and memory fills installed
            // during this cycle's accesses.
            let ev = Event::Occupancy {
                rob: self.rob_occupancy() as u64,
                iq: self.iq.len() as u64,
                fq: self.fq.len() as u64,
                mq: self.mq.len() as u64,
            };
            self.tracer.record(self.now, ev);
            for fill in self.mem_sys.obs_drain() {
                let MemEvent::Fill { at, line } = fill;
                self.tracer.record(at, Event::MemFill { line });
            }
        }
        #[cfg(debug_assertions)]
        if self.now.is_multiple_of(64) {
            self.assert_invariants();
        }
        self.now += 1;
        let active = self
            .ctxs
            .iter()
            .filter(|c| c.state != CtxState::Free)
            .count();
        self.stats.peak_contexts = self.stats.peak_contexts.max(active);
    }

    /// Cycle-level invariant sweep, compiled only under debug assertions
    /// (sampled every 64 cycles from [`Machine::cycle`]). Catches
    /// bookkeeping corruption near the cycle it happens instead of at the
    /// end-of-run differential check.
    #[cfg(debug_assertions)]
    fn assert_invariants(&self) {
        for (i, c) in self.ctxs.iter().enumerate() {
            if c.state == CtxState::Free {
                continue;
            }
            let mut prev: Option<u64> = None;
            for &uid in c.rob.iter() {
                let seq = self.uops.get(uid).seq;
                if let Some(p) = prev {
                    assert!(
                        seq > p,
                        "cycle {}: ctx{i} ROB out of order (seq {seq} after {p})",
                        self.now
                    );
                }
                prev = Some(seq);
            }
        }
        if let Err(e) = self.rf.check_consistency() {
            panic!("cycle {}: physical register file corrupt: {e}", self.now);
        }
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.now;
        self.stats.mem = self.mem_sys.stats();
        self.stats.caches = self.mem_sys.cache_stats();
        let pf = self.mem_sys.prefetch_stats();
        self.stats.prefetch = (pf.trains, pf.streams_allocated, pf.issued, pf.stream_hits);
        self.stats.predictor = self.predictor.counters();
    }

    /// Statistics so far (final after [`Machine::run`] returns).
    pub fn stats(&self) -> &PipeStats {
        &self.stats
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The architectural integer register file (reads through the current
    /// root context's map). Only meaningful once the machine is idle.
    pub fn arch_int_regs(&self) -> [u64; 32] {
        let ctx = &self.ctxs[self.root_ctx];
        let mut regs = [0u64; 32];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.rf.read(RegClass::Int, ctx.int_map[i]);
        }
        regs
    }

    /// The architectural floating-point register file.
    pub fn arch_fp_regs(&self) -> [f64; 32] {
        let ctx = &self.ctxs[self.root_ctx];
        let mut regs = [0.0f64; 32];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = f64::from_bits(self.rf.read(RegClass::Fp, ctx.fp_map[i]));
        }
        regs
    }

    /// The architectural memory image (for differential tests).
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Check physical-register-file bookkeeping (tests).
    pub fn check_regfile(&self) -> Result<(), String> {
        self.rf.check_consistency()
    }

    /// Multi-line diagnostic dump of the machine state (for debugging
    /// wedges; not part of the stable API).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle={} committed={} events={} root={}",
            self.now,
            self.stats.committed,
            self.events.len(),
            self.root_ctx
        );
        for (i, c) in self.ctxs.iter().enumerate() {
            if c.state == CtxState::Free {
                continue;
            }
            let _ = writeln!(
                out,
                "ctx{i}: {:?} spec={} parent={:?} pending={:?} pc={} rob={} fb={} stopped={} wait={} halted={} sb={} kids={}",
                c.state,
                c.speculative,
                c.parent,
                c.pending_child,
                c.pc,
                c.rob.len(),
                c.fetch_buffer.len(),
                c.fetch_stopped,
                c.wait_redirect,
                c.halted,
                c.store_buffer.len(),
                c.live_children,
            );
            for uid in c.rob.iter().take(3) {
                let u = self.uops.get(*uid);
                let _ = writeln!(
                    out,
                    "   head uop pc={} {:?} seq={} {:?} kids={} in_q={}",
                    u.pc,
                    u.inst.op,
                    u.seq,
                    u.state,
                    u.vp.children.len(),
                    u.in_queue,
                );
            }
        }
        out
    }

    /// Occupancy snapshot for debugging and tests:
    /// (ROB, IQ, FQ, MQ, pending events, free int pregs, free fp pregs).
    pub fn occupancy(&self) -> (usize, usize, usize, usize, usize, usize, usize) {
        (
            self.rob_occupancy(),
            self.iq.len(),
            self.fq.len(),
            self.mq.len(),
            self.events.len(),
            self.rf.free_count(RegClass::Int),
            self.rf.free_count(RegClass::Fp),
        )
    }

    // ---- shared helpers -------------------------------------------------

    pub(crate) fn note_commit_progress(&mut self) {
        self.last_commit_cycle = self.now;
    }

    /// Find a free hardware context, if any. Local slots come first in
    /// `ctxs`, so a CMP machine with borrowed remote slots naturally
    /// prefers local contexts; a freed remote slot stays unavailable
    /// until its cross-core reconciliation finishes (`free_at`).
    pub(crate) fn find_free_ctx(&self) -> Option<CtxId> {
        self.ctxs
            .iter()
            .position(|c| c.state == CtxState::Free && c.free_at <= self.now)
    }

    /// Queue for an execution-unit class.
    pub(crate) fn queue_for(&mut self, unit: ExecUnit) -> &mut Vec<(UopId, u32)> {
        match unit {
            ExecUnit::Int => &mut self.iq,
            ExecUnit::Fp => &mut self.fq,
            ExecUnit::Mem => &mut self.mq,
        }
    }

    /// Capacity of the queue for a unit class.
    pub(crate) fn queue_cap(&self, unit: ExecUnit) -> usize {
        match unit {
            ExecUnit::Int => self.cfg.iq_entries,
            ExecUnit::Fp => self.cfg.fq_entries,
            ExecUnit::Mem => self.cfg.mq_entries,
        }
    }

    /// Live occupancy of a queue (purges dead entries as a side effect).
    pub(crate) fn queue_len(&mut self, unit: ExecUnit) -> usize {
        // Take the buffer out so `retain` can borrow `self.uops`; the same
        // allocation goes back, so this never allocates.
        let mut q = std::mem::take(self.queue_for(unit));
        q.retain(|&(id, g)| self.uops.is_live(id, g));
        let len = q.len();
        *self.queue_for(unit) = q;
        len
    }

    /// Total in-flight uops across all contexts (ROB occupancy).
    pub(crate) fn rob_occupancy(&self) -> usize {
        self.ctxs.iter().map(|c| c.rob.len()).sum()
    }

    /// The value a load from `addr` observes at this moment, honouring the
    /// store-visibility chain: own in-flight stores, own store buffer, then
    /// each ancestor's (limited to stores older than the spawn point), and
    /// finally architectural memory.
    ///
    /// Memory dependences are *speculative*: an older store whose address
    /// is still unresolved is assumed not to alias. When it resolves and
    /// does alias, the store's completion replays the load (see
    /// `replay_younger_loads`), exactly like a load-store-queue violation
    /// replay in a real machine.
    pub(crate) fn chain_load_value(&self, ctx: CtxId, load_seq: u64, addr: u64) -> u64 {
        let mut limit = load_seq;
        let mut c = ctx;
        loop {
            let cx = &self.ctxs[c];
            // In-flight (LSQ) stores, youngest first.
            for &(sseq, uid) in cx.lsq.iter().rev() {
                if sseq >= limit {
                    continue;
                }
                let u = self.uops.get(uid);
                if u.eff_addr == Some(addr) {
                    return u.store_data.expect("resolved store has data");
                }
            }
            if let Some(v) = cx.search_store_buffer(addr, limit) {
                return v;
            }
            match cx.parent {
                Some(p) => {
                    limit = limit.min(cx.spawn_seq);
                    c = p;
                }
                None => break,
            }
        }
        self.memory.peek_u64(addr)
    }

    /// Whether the store with age `store_seq` in `store_ctx` is visible to
    /// loads of context `c` (i.e. older than every spawn point on the path
    /// from `c` up to `store_ctx`). Same-context stores are always visible.
    pub(crate) fn store_visible_to(&self, store_ctx: CtxId, store_seq: u64, c: CtxId) -> bool {
        let mut cur = c;
        let mut limit = u64::MAX;
        loop {
            if cur == store_ctx {
                return store_seq < limit;
            }
            match self.ctxs[cur].parent {
                Some(p) => {
                    limit = limit.min(self.ctxs[cur].spawn_seq);
                    cur = p;
                }
                None => return false,
            }
        }
    }

    /// Selector decision for the load at `pc` (with optional known effective
    /// address for the cache-level oracle).
    pub(crate) fn select_decision(&mut self, pc: u64, base_addr: Option<u64>) -> SelectDecision {
        match &mut self.selector {
            AnySelector::Always => SelectDecision::allow_all(),
            AnySelector::Ilp(ilp) => ilp.decide(pc),
            AnySelector::L3Miss => match base_addr {
                // Known address: MTVP only for lines not resident below L3;
                // STVP for anything that misses L1 (§5.1).
                Some(addr) => {
                    let level = self.mem_sys.probe_level(addr);
                    SelectDecision {
                        allow_stvp: level != mtvp_mem::HitLevel::L1,
                        allow_mtvp: level == mtvp_mem::HitLevel::Memory,
                    }
                }
                // Unknown base (dependent load): treat as a long-latency miss.
                None => SelectDecision::allow_all(),
            },
        }
    }

    /// Record a finished ILP-pred episode. Spawning episodes are charged
    /// the spawn latency in addition to the load's in-flight window, so
    /// the selector sees the cost of spawning for short (cache-hit) loads
    /// whose stall lands after the prediction confirms.
    pub(crate) fn record_episode(
        &mut self,
        pc: u64,
        class: mtvp_vp::VpClass,
        issued_at: u64,
        cycle_at: u64,
    ) {
        if let AnySelector::Ilp(ilp) = &mut self.selector {
            let progress = self.issued_total.saturating_sub(issued_at);
            let mut cycles = self.now.saturating_sub(cycle_at);
            if class == mtvp_vp::VpClass::Mtvp {
                cycles += self.cfg.vp.spawn_latency;
            }
            ilp.record(pc, class, progress, cycles);
        }
    }
}

impl<'p, T: Tracer> StagedCore<'p, T, SmtOooStages> {
    /// Run the machine to completion exactly like [`StagedCore::run`],
    /// but stepping with the hand-wired pre-framework cycle instead of
    /// the stage-set dispatch. This is the differential reference for
    /// `tests/framework.rs`: the pre-framework machine was this hand-wired
    /// sequence, so a framework-composed run must be bit-identical to it.
    /// Only the default stage set has this entry point — the hand-wired
    /// cycle *is* the out-of-order stage sequence, so offering it on any
    /// other stage set would silently compare the wrong machines.
    pub fn run_hand_wired(&mut self) -> PipeStats {
        self.advance_to_inner::<false>(u64::MAX);
        self.finalize_stats();
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_regfile() {
            panic!("post-run register-file check failed: {e}");
        }
        self.stats.clone()
    }
}
