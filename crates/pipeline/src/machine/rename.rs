//! Rename/dispatch stage: register renaming, queue insertion, and the
//! value-prediction decision point (§3.1–§3.3) including thread spawning.

use super::StagedCore;
use crate::context::{CtxState, FetchedInst};
use crate::framework::{SpawnPolicy, StageSet};
use crate::regfile::RegClass;
use crate::uop::{BranchInfo, CtxId, DstOperand, SrcOperand, Uop, UopId, UopState, VpInfo};
use mtvp_isa::{Def, Op};
use mtvp_obs::{Event, Tracer, VpKind};
use mtvp_vp::VpClass;

impl<T: Tracer, S: StageSet> StagedCore<'_, T, S> {
    /// Rename up to `rename_width` instructions, rotating fairness among
    /// contexts across cycles.
    pub(crate) fn rename_stage(&mut self) {
        let n = self.ctxs.len();
        let mut budget = self.cfg.rename_width;
        for k in 0..n {
            let ctx = (self.rr_cursor + k) % n;
            if self.ctxs[ctx].state != CtxState::Active || self.now < self.ctxs[ctx].rename_ready_at
            {
                continue;
            }
            while budget > 0 && self.rename_one(ctx) {
                budget -= 1;
            }
            if budget == 0 {
                break;
            }
        }
        self.rr_cursor = (self.rr_cursor + 1) % n.max(1);
    }

    /// Rename the next instruction of `ctx`. Returns false when nothing
    /// could be renamed (empty/immature buffer or structural stall).
    fn rename_one(&mut self, ctx: CtxId) -> bool {
        // Peek the head of the fetch buffer.
        let Some(front) = self.ctxs[ctx].fetch_buffer.front() else {
            return false;
        };
        if front.ready_at > self.now {
            return false;
        }
        let inst = front.inst;

        // Structural hazards: ROB space, queue space, physical registers.
        if self.rob_occupancy() >= self.cfg.rob_entries {
            return false;
        }
        let needs_queue = !matches!(inst.op, Op::Nop | Op::Halt);
        if needs_queue {
            let unit = inst.unit();
            if self.queue_len(unit) >= self.queue_cap(unit) {
                return false;
            }
        }
        let dest_class = match inst.def() {
            Def::None => None,
            Def::Int(_) => Some(RegClass::Int),
            Def::Fp(_) => Some(RegClass::Fp),
        };
        if let Some(class) = dest_class {
            if self.rf.free_count(class) == 0 {
                return false;
            }
        }

        let fi = self.ctxs[ctx]
            .fetch_buffer
            .pop_front()
            .expect("peeked entry");
        let seq = self.next_seq;
        self.next_seq += 1;

        // Rename sources through the current map.
        let uses = inst.uses();
        let mut srcs: [Option<SrcOperand>; 3] = [None; 3];
        let mut si = 0;
        for r in uses.int.iter().flatten() {
            srcs[si] = Some(SrcOperand {
                class: RegClass::Int,
                preg: self.ctxs[ctx].int_map[r.index()],
            });
            si += 1;
        }
        for f in uses.fp.iter().flatten() {
            srcs[si] = Some(SrcOperand {
                class: RegClass::Fp,
                preg: self.ctxs[ctx].fp_map[f.index()],
            });
            si += 1;
        }

        // Rename the destination.
        let dst = match inst.def() {
            Def::None => None,
            Def::Int(r) => {
                let preg = self.rf.alloc(RegClass::Int).expect("checked free above");
                let old = self.ctxs[ctx].int_map[r.index()];
                self.ctxs[ctx].int_map[r.index()] = preg;
                Some(DstOperand {
                    class: RegClass::Int,
                    arch: r.0,
                    preg,
                    old_preg: old,
                })
            }
            Def::Fp(f) => {
                let preg = self.rf.alloc(RegClass::Fp).expect("checked free above");
                let old = self.ctxs[ctx].fp_map[f.index()];
                self.ctxs[ctx].fp_map[f.index()] = preg;
                Some(DstOperand {
                    class: RegClass::Fp,
                    arch: f.0,
                    preg,
                    old_preg: old,
                })
            }
        };

        let branch = if inst.is_control() {
            Some(BranchInfo {
                pred_target: fi.pred_next,
                ghist_prior: fi.ghist_prior,
                ras_after: fi.ras_after.clone(),
                resolved: false,
            })
        } else {
            None
        };

        let state = if needs_queue {
            UopState::Dispatched
        } else {
            UopState::Completed
        };
        let uop = Uop {
            inst,
            pc: fi.pc,
            ctx,
            seq,
            trace_idx: fi.trace_idx,
            state,
            srcs,
            dst,
            branch,
            vp: VpInfo::default(),
            eff_addr: None,
            store_data: None,
            in_queue: needs_queue,
            exec_token: 0,
            exec_value: None,
            resolved_taken: false,
            resolved_target: 0,
        };
        let (id, generation) = self.uops.insert(uop);
        self.ctxs[ctx].rob.push_back(id);
        if inst.is_store() {
            self.ctxs[ctx].lsq.push_back((seq, id));
        }
        if needs_queue {
            let unit = inst.unit();
            self.queue_for(unit).push((id, generation));
            self.ctxs[ctx].queued_count += 1;
        }
        if T::ENABLED {
            let ev = Event::Rename {
                ctx,
                seq,
                pc: fi.pc,
                op: inst.op.mnemonic(),
                fetched_at: fi.ready_at - self.cfg.front_end_latency,
            };
            self.tracer.record(self.now, ev);
        }

        if inst.is_load() {
            // The stage set's spawn policy decides what a renamed load
            // triggers: value prediction and thread spawning on the SMT
            // core, nothing at all on cores without it.
            S::Spawn::consider(self, ctx, id, &fi);
        }
        true
    }

    /// The value-prediction decision for a freshly renamed load (§3.1).
    /// Invoked through [`crate::framework::ValuePredictSpawn`].
    pub(crate) fn maybe_value_predict(&mut self, ctx: CtxId, load: UopId, fi: &FetchedInst) {
        let vp = &self.cfg.vp;
        let vp_enabled = vp.allow_stvp || vp.allow_mtvp || vp.spawn_only;
        let (pc, trace_idx, dest_preg_class) = {
            let u = self.uops.get(load);
            (u.pc, u.trace_idx, u.dst.map(|d| (d.preg, d.class)))
        };
        if !vp_enabled {
            // Still record a no-prediction episode so ILP-pred keeps a
            // baseline if it is ever consulted.
            self.uops.get_mut(load).vp.episode = Some((VpClass::NoVp, self.issued_total, self.now));
            return;
        }

        // Effective address, if the base register already holds a value
        // (used by the cache-level-oracle selector).
        let base_addr = {
            let u = self.uops.get(load);
            match u.srcs[0] {
                Some(s) if self.rf.is_ready(s.class, s.preg) => Some(
                    mtvp_isa::interp::effective_addr(self.rf.read(s.class, s.preg), u.inst.imm),
                ),
                Some(_) => None,
                None => Some(u.inst.imm as u64), // base is r0
            }
        };

        let mut class = VpClass::NoVp;

        if self.cfg.vp.spawn_only {
            let decision = self.select_decision(pc, base_addr);
            if decision.allow_mtvp {
                if self.find_free_ctx().is_some() {
                    if self.spawn_child(ctx, load, None, fi) {
                        self.stats.vp.spawn_only_spawns += 1;
                        class = VpClass::Mtvp;
                        if T::ENABLED {
                            let ev = Event::Predict {
                                ctx,
                                pc,
                                kind: VpKind::SpawnOnly,
                                value: None,
                            };
                            self.tracer.record(self.now, ev);
                        }
                    }
                } else {
                    self.stats.vp.spawn_no_context += 1;
                }
            }
        } else {
            let prediction = self.predictor.predict(trace_idx, pc);
            if let Some(v) = prediction.confident_value() {
                self.stats.vp.confident_loads += 1;
                let decision = self.select_decision(pc, base_addr);
                let want_mtvp = self.cfg.vp.allow_mtvp && decision.allow_mtvp;
                let spawned = if want_mtvp {
                    if self.find_free_ctx().is_some() && self.spawn_child(ctx, load, Some(v), fi) {
                        self.stats.vp.mtvp_spawns += 1;
                        self.predictor.spec_update(pc, v);
                        class = VpClass::Mtvp;
                        if T::ENABLED {
                            let ev = Event::Predict {
                                ctx,
                                pc,
                                kind: VpKind::Mtvp,
                                value: Some(v),
                            };
                            self.tracer.record(self.now, ev);
                        }
                        // Multiple-value prediction (§5.6): follow alternate
                        // above-threshold values in further contexts.
                        let extra = self.cfg.vp.max_values_per_load.saturating_sub(1);
                        for alt in prediction.alternates.iter().take(extra) {
                            if self.find_free_ctx().is_none() {
                                break;
                            }
                            if self.spawn_child(ctx, load, Some(*alt), fi) {
                                self.stats.vp.multi_value_spawns += 1;
                            }
                        }
                        true
                    } else {
                        self.stats.vp.spawn_no_context += 1;
                        false
                    }
                } else {
                    false
                };
                if !spawned && self.cfg.vp.allow_stvp && decision.allow_stvp {
                    // Single-threaded VP: insert the predicted value into the
                    // load's destination register right away.
                    if let Some((preg, regclass)) = dest_preg_class {
                        self.rf.write(regclass, preg, v);
                    }
                    self.uops.get_mut(load).vp.stvp_value = Some(v);
                    self.predictor.spec_update(pc, v);
                    self.stats.vp.stvp_used += 1;
                    class = VpClass::Stvp;
                    if T::ENABLED {
                        let ev = Event::Predict {
                            ctx,
                            pc,
                            kind: VpKind::Stvp,
                            value: Some(v),
                        };
                        self.tracer.record(self.now, ev);
                    }
                }
                // Keep the over-threshold alternates for the Fig. 5
                // measurement regardless of what was followed.
                self.uops.get_mut(load).vp.alternates = prediction.alternates;
            }
        }

        self.uops.get_mut(load).vp.episode = Some((class, self.issued_total, self.now));
    }

    /// Spawn a speculative thread for the load `load` of `parent`, seeding
    /// the load's destination with `value` (`None` = spawn-only: the child
    /// shares the parent's destination register and blocks on it). Returns
    /// false if resources ran out at the last moment.
    fn spawn_child(
        &mut self,
        parent: CtxId,
        load: UopId,
        value: Option<u64>,
        fi: &FetchedInst,
    ) -> bool {
        let Some(child) = self.find_free_ctx() else {
            return false;
        };
        debug_assert_ne!(child, parent);
        let (load_seq, load_pc, load_trace_idx, dst) = {
            let u = self.uops.get(load);
            (u.seq, u.pc, u.trace_idx, u.dst)
        };
        // A value-carrying spawn needs one fresh physical register.
        let dest = match (value, dst) {
            (Some(_), Some(d)) => {
                if self.rf.free_count(d.class) == 0 {
                    return false;
                }
                Some(d)
            }
            (Some(_), None) => None, // load to r0: prediction has no register effect
            (None, d) => d,
        };

        // Flash-copy the rename maps, bumping use counts (§3.2).
        let (int_map, fp_map) = {
            let p = &self.ctxs[parent];
            (p.int_map, p.fp_map)
        };
        for preg in int_map {
            self.rf.incref(RegClass::Int, preg);
        }
        for preg in fp_map {
            self.rf.incref(RegClass::Fp, preg);
        }

        // A remote (cross-core) slot pays the interconnect on top of the
        // flash-copy: the register map travels to the sibling core.
        let remote = child >= self.cfg.hw_contexts;
        let mut spawn_lat = self.cfg.vp.spawn_latency;
        if remote {
            spawn_lat += self.cfg.remote_spawn_extra;
            self.stats.vp.cross_core_spawns += 1;
        }
        let c = &mut self.ctxs[child];
        c.state = CtxState::Active;
        c.speculative = true;
        c.parent = Some(parent);
        c.spawn_seq = load_seq;
        c.int_map = int_map;
        c.fp_map = fp_map;
        c.fetch_ready_at = self.now + spawn_lat;
        c.rename_ready_at = self.now + spawn_lat;
        c.spawn_load = Some((load, self.uops.generation(load)));
        c.committed_spec = 0;
        c.committed_halt = false;
        c.halted = false;
        c.fetch_stopped = false;
        c.wait_redirect = false;
        c.pending_child = None;

        // Substitute the predicted value for the load destination.
        if let (Some(v), Some(d)) = (value, dest) {
            // Undo the copied reference to the parent's load-dest register
            // and point the child at a fresh register holding `v`.
            self.rf.decref(d.class, d.preg);
            let fresh = self.rf.alloc(d.class).expect("checked free above");
            self.rf.write(d.class, fresh, v);
            match d.class {
                RegClass::Int => self.ctxs[child].int_map[d.arch as usize] = fresh,
                RegClass::Fp => self.ctxs[child].fp_map[d.arch as usize] = fresh,
            }
        }

        // Fetch stream handoff.
        let single_fetch_path =
            self.cfg.vp.fetch_policy == crate::config::FetchPolicy::SingleFetchPath;
        let parent_has_spawn = {
            let u = self.uops.get(load);
            !u.vp.children.is_empty()
        };
        if single_fetch_path && !parent_has_spawn {
            // The child inherits the parent's entire fetch front: buffer,
            // PC, history, RAS (§3.3 — "the currently active thread can
            // always use instructions which have already been fetched").
            let (buf, pc, cursor, ghist, ras, wait) = {
                let p = &mut self.ctxs[parent];
                let buf = std::mem::take(&mut p.fetch_buffer);
                let out = (
                    buf,
                    p.pc,
                    p.trace_cursor,
                    p.ghist,
                    p.ras.clone(),
                    p.wait_redirect,
                );
                p.fetch_stopped = true;
                p.wait_redirect = false;
                out
            };
            let c = &mut self.ctxs[child];
            c.fetch_buffer = buf;
            c.pc = pc;
            c.trace_cursor = cursor;
            c.ghist = ghist;
            c.ras = ras;
            c.wait_redirect = wait;
        } else {
            // No-stall policy, or an extra multiple-value child: start
            // fresh at the instruction after the load.
            let c = &mut self.ctxs[child];
            c.fetch_buffer.clear();
            c.pc = load_pc + 1;
            c.trace_cursor = load_trace_idx + 1;
            c.ghist = fi.ghist_prior;
            c.ras = fi.ras_after.clone();
        }

        // Record the child on the load, and resume state for a wrong
        // prediction (single fetch path resumes fetching after the load).
        {
            let u = self.uops.get_mut(load);
            u.vp.children.push((child, value));
            if u.branch.is_none() {
                u.branch = Some(BranchInfo {
                    pred_target: load_pc + 1,
                    ghist_prior: fi.ghist_prior,
                    ras_after: fi.ras_after.clone(),
                    resolved: false,
                });
            }
        }
        self.ctxs[parent].live_children += 1;
        if T::ENABLED {
            let ev = Event::Spawn {
                parent,
                child,
                pc: load_pc,
                seq: load_seq,
                value,
            };
            self.tracer.record(self.now, ev);
        }
        true
    }
}
