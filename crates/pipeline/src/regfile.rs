//! Shared, reference-counted physical register file.
//!
//! An SMT processor shares one physical register file among all contexts;
//! threaded value prediction leans on this: spawning a thread is a flash
//! copy of the parent's rename *map*, with the use count of every mapped
//! register incremented so the parent's values cannot be recycled while a
//! speculative child still references them (§3.2 — the paper's "use
//! counter", analogous to Cherry's pending counter).

use serde::{Deserialize, Serialize};

/// Register class: integer or floating point.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer registers.
    Int,
    /// Floating-point registers (stored as f64 bit patterns).
    Fp,
}

/// Index of a physical register within its class's file.
pub type PregId = u32;

#[derive(Clone, Debug)]
struct File {
    value: Vec<u64>,
    ready: Vec<bool>,
    refcount: Vec<u32>,
    free: Vec<PregId>,
}

impl File {
    fn new(size: usize) -> Self {
        File {
            value: vec![0; size],
            ready: vec![false; size],
            refcount: vec![0; size],
            // Allocate low indices first for debuggability.
            free: (0..size as PregId).rev().collect(),
        }
    }

    fn alloc(&mut self) -> Option<PregId> {
        let id = self.free.pop()?;
        let i = id as usize;
        debug_assert_eq!(self.refcount[i], 0, "allocated preg had live references");
        self.value[i] = 0;
        self.ready[i] = false;
        self.refcount[i] = 1;
        Some(id)
    }
}

/// The unified physical register file (both classes).
#[derive(Clone, Debug)]
pub struct PhysRegFile {
    int: File,
    fp: File,
}

impl PhysRegFile {
    /// Create a register file with `per_class` registers in each class.
    pub fn new(per_class: usize) -> Self {
        PhysRegFile {
            int: File::new(per_class),
            fp: File::new(per_class),
        }
    }

    fn file(&self, class: RegClass) -> &File {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    fn file_mut(&mut self, class: RegClass) -> &mut File {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Allocate a register with refcount 1, not ready, value 0.
    /// Returns `None` when the class is out of registers (rename stalls).
    pub fn alloc(&mut self, class: RegClass) -> Option<PregId> {
        self.file_mut(class).alloc()
    }

    /// Increment the use count (a new rename-map reference, e.g. spawn copy).
    pub fn incref(&mut self, class: RegClass, id: PregId) {
        self.file_mut(class).refcount[id as usize] += 1;
    }

    /// Decrement the use count; frees the register when it reaches zero.
    ///
    /// # Panics
    /// Panics if the count is already zero (a bookkeeping bug).
    pub fn decref(&mut self, class: RegClass, id: PregId) {
        let f = self.file_mut(class);
        let rc = &mut f.refcount[id as usize];
        assert!(*rc > 0, "decref of dead {class:?} preg {id}");
        *rc -= 1;
        if *rc == 0 {
            f.ready[id as usize] = false;
            f.free.push(id);
        }
    }

    /// Write a value and mark the register ready.
    pub fn write(&mut self, class: RegClass, id: PregId, value: u64) {
        let f = self.file_mut(class);
        f.value[id as usize] = value;
        f.ready[id as usize] = true;
    }

    /// Mark a register not-ready again (selective reissue invalidation).
    pub fn unready(&mut self, class: RegClass, id: PregId) {
        self.file_mut(class).ready[id as usize] = false;
    }

    /// Whether the register holds a (possibly speculative) value.
    #[inline]
    pub fn is_ready(&self, class: RegClass, id: PregId) -> bool {
        self.file(class).ready[id as usize]
    }

    /// Read a register's value (valid only when ready).
    #[inline]
    pub fn read(&self, class: RegClass, id: PregId) -> u64 {
        self.file(class).value[id as usize]
    }

    /// Current reference count (for tests and invariant checks).
    pub fn refcount(&self, class: RegClass, id: PregId) -> u32 {
        self.file(class).refcount[id as usize]
    }

    /// Number of free registers in a class.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.file(class).free.len()
    }

    /// Total registers per class.
    pub fn capacity(&self) -> usize {
        self.int.value.len()
    }

    /// Invariant check: every register is either free or referenced, and
    /// the free list has no duplicates. Used by tests.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (name, f) in [("int", &self.int), ("fp", &self.fp)] {
            let mut on_free = vec![false; f.value.len()];
            for &id in &f.free {
                if on_free[id as usize] {
                    return Err(format!("{name} free list has duplicate {id}"));
                }
                on_free[id as usize] = true;
            }
            for (i, &free) in on_free.iter().enumerate() {
                let rc = f.refcount[i];
                match (rc, free) {
                    (0, false) => return Err(format!("{name} preg {i} leaked (rc=0, not free)")),
                    (r, true) if r > 0 => return Err(format!("{name} preg {i} free with rc={r}")),
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_free_cycle() {
        let mut rf = PhysRegFile::new(4);
        let a = rf.alloc(RegClass::Int).unwrap();
        assert!(!rf.is_ready(RegClass::Int, a));
        rf.write(RegClass::Int, a, 42);
        assert!(rf.is_ready(RegClass::Int, a));
        assert_eq!(rf.read(RegClass::Int, a), 42);
        rf.decref(RegClass::Int, a);
        assert_eq!(rf.free_count(RegClass::Int), 4);
        rf.check_consistency().unwrap();
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = PhysRegFile::new(2);
        assert!(rf.alloc(RegClass::Fp).is_some());
        assert!(rf.alloc(RegClass::Fp).is_some());
        assert!(rf.alloc(RegClass::Fp).is_none());
        // Int class unaffected.
        assert!(rf.alloc(RegClass::Int).is_some());
    }

    #[test]
    fn refcounting_keeps_register_alive() {
        let mut rf = PhysRegFile::new(2);
        let a = rf.alloc(RegClass::Int).unwrap();
        rf.incref(RegClass::Int, a); // spawn copy
        rf.decref(RegClass::Int, a); // parent releases
        assert_eq!(rf.refcount(RegClass::Int, a), 1);
        assert_eq!(rf.free_count(RegClass::Int), 1);
        rf.decref(RegClass::Int, a); // child releases
        assert_eq!(rf.free_count(RegClass::Int), 2);
        rf.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "decref of dead")]
    fn double_free_panics() {
        let mut rf = PhysRegFile::new(2);
        let a = rf.alloc(RegClass::Int).unwrap();
        rf.decref(RegClass::Int, a);
        rf.decref(RegClass::Int, a);
    }

    #[test]
    fn unready_clears_without_freeing() {
        let mut rf = PhysRegFile::new(2);
        let a = rf.alloc(RegClass::Fp).unwrap();
        rf.write(RegClass::Fp, a, 7);
        rf.unready(RegClass::Fp, a);
        assert!(!rf.is_ready(RegClass::Fp, a));
        assert_eq!(rf.refcount(RegClass::Fp, a), 1);
    }

    #[test]
    fn consistency_detects_leak() {
        let mut rf = PhysRegFile::new(2);
        let _a = rf.alloc(RegClass::Int).unwrap();
        // A live register is fine.
        rf.check_consistency().unwrap();
    }
}
