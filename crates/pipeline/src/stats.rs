//! Simulation statistics.

use mtvp_mem::{CacheStats, MemStats};
use mtvp_vp::PredictorCounters;
use serde::{Deserialize, Serialize};

/// Value-speculation statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VpStats {
    /// Loads for which a confident prediction was available.
    pub confident_loads: u64,
    /// Single-threaded value predictions followed.
    pub stvp_used: u64,
    /// STVP predictions verified correct.
    pub stvp_correct: u64,
    /// STVP predictions verified wrong (selective reissue triggered).
    pub stvp_wrong: u64,
    /// Threads spawned for value predictions.
    pub mtvp_spawns: u64,
    /// Spawned predictions confirmed correct (child survived).
    pub mtvp_correct: u64,
    /// Spawned predictions wrong (child subtree killed).
    pub mtvp_wrong: u64,
    /// Spawn-only threads spawned (§5.7 comparator).
    pub spawn_only_spawns: u64,
    /// Spawns refused because no context was free.
    pub spawn_no_context: u64,
    /// Extra children spawned by multiple-value prediction (§5.6).
    pub multi_value_spawns: u64,
    /// Followed predictions whose primary value was wrong (Fig. 5 denominator
    /// counts all followed predictions = stvp_used + mtvp_spawns).
    pub followed_wrong: u64,
    /// Followed predictions whose primary value was wrong but the correct
    /// value was present in the predictor and over threshold (Fig. 5).
    pub wrong_but_alternate_held: u64,
    /// Instructions re-executed by selective reissue.
    pub reissued_uops: u64,
    /// Commit stalls due to a full speculative store buffer.
    pub store_buffer_stalls: u64,
    /// Threads spawned into a borrowed remote-core context (CMP
    /// cross-core spawning; zero on single-core machines).
    pub cross_core_spawns: u64,
    /// Remote contexts returned to the free pool at reconcile/kill time
    /// (each pays the cross-core reconciliation latency).
    pub cross_core_reconciles: u64,
}

/// CMP topology summary: filled only by [`crate::CmpMachine`] runs with
/// more than one core; all-zero (the default) on single-core runs, so a
/// `cores=1` CMP run stays bit-identical to the plain machine.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmpSummary {
    /// Cores in the topology (0 = not a CMP run).
    pub cores: usize,
    /// Architectural commits across all co-runner cores.
    pub co_committed: u64,
    /// Cycles simulated across all co-runner cores.
    pub co_cycles: u64,
    /// Shared-L3 hits (all cores, demand accesses).
    pub shared_l3_hits: u64,
    /// Shared-L3 misses (all cores, demand accesses).
    pub shared_l3_misses: u64,
}

/// Branch statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Committed conditional branches.
    pub cond_committed: u64,
    /// Resolved-mispredicted branch events (includes wrong-path ones).
    pub mispredicts: u64,
    /// Indirect jumps resolved with a wrong predicted target.
    pub indirect_mispredicts: u64,
}

/// Full statistics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles on which no pipeline stage made observable progress (the
    /// machine was purely waiting for an in-flight event). Counted
    /// identically whether idle stretches are stepped cycle-by-cycle or
    /// fast-forwarded.
    pub idle_cycles: u64,
    /// Architecturally committed instructions ("useful" instructions: only
    /// work on the surviving path is counted).
    pub committed: u64,
    /// Speculatively committed instructions later discarded with a killed
    /// thread.
    pub discarded_spec_commits: u64,
    /// Instructions fetched (all paths).
    pub fetched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Instructions squashed (branch mispredicts, thread kills).
    pub squashed: u64,
    /// Whether the program ran to `halt` (vs. hitting a limit).
    pub halted: bool,
    /// Value-speculation statistics.
    pub vp: VpStats,
    /// Branch statistics.
    pub branches: BranchStats,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// (L1I, L1D, L2, L3) cache statistics.
    pub caches: (CacheStats, CacheStats, CacheStats, CacheStats),
    /// Stream prefetcher: (trains, streams, issued, stream hits).
    pub prefetch: (u64, u64, u64, u64),
    /// Value-predictor usage counters.
    pub predictor: PredictorCounters,
    /// Maximum number of contexts simultaneously active.
    pub peak_contexts: usize,
    /// CMP topology summary (all-zero outside `CmpMachine` runs).
    pub cmp: CmpSummary,
}

impl PipeStats {
    /// Useful IPC: architecturally committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Percent speedup of this run over a baseline run of the same program
    /// (the paper's "Percent Speedup" axis: change in useful IPC).
    pub fn speedup_over(&self, baseline: &PipeStats) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            (self.ipc() / baseline.ipc() - 1.0) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_speedup() {
        let base = PipeStats {
            cycles: 1000,
            committed: 500,
            ..Default::default()
        };
        let fast = PipeStats {
            cycles: 1000,
            committed: 750,
            ..Default::default()
        };
        assert!((base.ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 50.0).abs() < 1e-9);
        let empty = PipeStats::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(fast.speedup_over(&empty), 0.0);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let mut s = PipeStats {
            cycles: 123_456,
            idle_cycles: 42,
            committed: 99_999,
            discarded_spec_commits: 3,
            fetched: 150_000,
            issued: 140_000,
            squashed: 1_234,
            halted: true,
            peak_contexts: 5,
            ..Default::default()
        };
        s.vp.mtvp_spawns = 17;
        s.vp.mtvp_correct = 11;
        s.vp.mtvp_wrong = 6;
        s.vp.store_buffer_stalls = u64::MAX; // extremes must survive too
        s.branches.cond_committed = 88;
        s.branches.mispredicts = 7;
        s.prefetch = (1, 2, 3, 4);
        let text = serde_json::to_string(&s).expect("serializes");
        let back: PipeStats = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, s);
    }
}
