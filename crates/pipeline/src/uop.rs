//! In-flight micro-operations and their slab storage.

use crate::regfile::{PregId, RegClass};
use mtvp_branch::ReturnAddressStack;
use mtvp_isa::Inst;

/// Identifier of a hardware context.
pub type CtxId = usize;

/// Slab index of a [`Uop`] (stable while the uop is in flight).
pub type UopId = usize;

/// Lifecycle of a uop.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UopState {
    /// Renamed and waiting in an issue queue.
    Dispatched,
    /// Issued to a functional unit; completion event pending.
    Issued,
    /// Result written back; eligible for commit when it reaches the ROB head.
    Completed,
}

/// A renamed source operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SrcOperand {
    /// Register class.
    pub class: RegClass,
    /// Physical register holding the value.
    pub preg: PregId,
}

/// A renamed destination operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DstOperand {
    /// Register class.
    pub class: RegClass,
    /// Architectural register index (1..32 int, 0..32 fp).
    pub arch: u8,
    /// Newly allocated physical register.
    pub preg: PregId,
    /// Previous mapping of `arch` (freed at commit, restored on squash).
    pub old_preg: PregId,
}

/// Value-speculation state attached to a load.
#[derive(Clone, Debug, Default)]
pub struct VpInfo {
    /// Predicted value used for single-threaded VP, if any.
    pub stvp_value: Option<u64>,
    /// Whether the STVP prediction has been verified once (stats/episodes
    /// recorded); re-executions do not re-verify.
    pub stvp_verified: bool,
    /// Spawned children: (context, predicted value). `None` value for a
    /// spawn-only thread. Resolved at commit of this load.
    pub children: Vec<(CtxId, Option<u64>)>,
    /// Above-threshold alternate values the predictor offered (for the
    /// Fig. 5 measurement), excluding the followed values.
    pub alternates: Vec<u64>,
    /// ILP-pred episode snapshot: (class, issued counter, cycle) at
    /// prediction time.
    pub episode: Option<(mtvp_vp::VpClass, u64, u64)>,
}

impl VpInfo {
    /// Whether any value speculation is attached.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_active(&self) -> bool {
        self.stvp_value.is_some() || !self.children.is_empty()
    }
}

/// Branch state captured at fetch/rename for recovery and training.
#[derive(Clone, Debug)]
pub struct BranchInfo {
    /// Predicted target PC of the *next* instruction to fetch (encodes
    /// the predicted direction for conditional branches).
    pub pred_target: u64,
    /// Global history before this branch shifted in.
    pub ghist_prior: u64,
    /// Return-address stack contents *after* this instruction's push/pop,
    /// restored when an older squash rolls past it.
    pub ras_after: ReturnAddressStack,
    /// Set once the branch has resolved (so reissue re-resolution is
    /// recognized as a second resolution).
    pub resolved: bool,
}

/// One in-flight instruction.
#[derive(Clone, Debug)]
pub struct Uop {
    /// The architectural instruction.
    pub inst: Inst,
    /// Its PC (instruction index).
    pub pc: u64,
    /// Owning context.
    pub ctx: CtxId,
    /// Global age (monotonic across all contexts; program order within a
    /// context's lineage).
    pub seq: u64,
    /// Committed-path dynamic index this instruction believes it occupies
    /// (drives the oracle and differential validation).
    pub trace_idx: u64,
    /// Lifecycle state.
    pub state: UopState,
    /// Renamed sources (up to 3: fmadd).
    pub srcs: [Option<SrcOperand>; 3],
    /// Renamed destination.
    pub dst: Option<DstOperand>,
    /// Branch prediction info (control instructions only).
    pub branch: Option<BranchInfo>,
    /// Value-prediction state (loads only).
    pub vp: VpInfo,
    /// Effective address once computed (loads/stores).
    pub eff_addr: Option<u64>,
    /// Store data value once read (stores).
    pub store_data: Option<u64>,
    /// Whether this uop currently occupies an issue-queue slot.
    pub in_queue: bool,
    /// Execution token: bumped on every (re)issue so stale completion
    /// events from a superseded execution are dropped.
    pub exec_token: u32,
    /// The value the load returned (loads; set at issue time from the
    /// store-visibility chain or memory).
    pub exec_value: Option<u64>,
    /// Resolved direction of a conditional branch (valid once resolved).
    pub resolved_taken: bool,
    /// Resolved next PC of a control instruction (valid once resolved).
    pub resolved_target: u64,
}

impl Uop {
    /// Whether every source operand is ready in `rf`.
    pub fn srcs_ready(&self, rf: &crate::regfile::PhysRegFile) -> bool {
        self.srcs
            .iter()
            .flatten()
            .all(|s| rf.is_ready(s.class, s.preg))
    }
}

/// Generational slab of in-flight uops. IDs are reused after removal; the
/// generation counter lets completion events detect that "their" uop was
/// squashed and the slot reused.
#[derive(Default, Debug)]
pub struct UopSlab {
    slots: Vec<Option<Uop>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

impl UopSlab {
    /// Create an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a uop, returning its (id, generation).
    pub fn insert(&mut self, uop: Uop) -> (UopId, u32) {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id] = Some(uop);
            (id, self.gens[id])
        } else {
            self.slots.push(Some(uop));
            self.gens.push(0);
            (self.slots.len() - 1, 0)
        }
    }

    /// Remove a uop, bumping the slot's generation.
    ///
    /// # Panics
    /// Panics if the slot is already empty.
    pub fn remove(&mut self, id: UopId) -> Uop {
        let uop = self.slots[id].take().expect("removing empty uop slot");
        self.gens[id] = self.gens[id].wrapping_add(1);
        self.free.push(id);
        self.live -= 1;
        uop
    }

    /// Borrow a live uop.
    #[inline]
    pub fn get(&self, id: UopId) -> &Uop {
        self.slots[id].as_ref().expect("dead uop id")
    }

    /// Mutably borrow a live uop.
    #[inline]
    pub fn get_mut(&mut self, id: UopId) -> &mut Uop {
        self.slots[id].as_mut().expect("dead uop id")
    }

    /// Whether `(id, gen)` still refers to a live uop.
    #[inline]
    pub fn is_live(&self, id: UopId, gen: u32) -> bool {
        self.slots.get(id).is_some_and(|s| s.is_some()) && self.gens[id] == gen
    }

    /// Current generation of a slot.
    pub fn generation(&self, id: UopId) -> u32 {
        self.gens[id]
    }

    /// Number of live uops.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no uops are live.
    #[allow(dead_code)] // API symmetry with `len`
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::Inst;

    fn dummy(seq: u64) -> Uop {
        Uop {
            inst: Inst::NOP,
            pc: 0,
            ctx: 0,
            seq,
            trace_idx: 0,
            state: UopState::Dispatched,
            srcs: [None; 3],
            dst: None,
            branch: None,
            vp: VpInfo::default(),
            eff_addr: None,
            store_data: None,
            in_queue: false,
            exec_token: 0,
            exec_value: None,
            resolved_taken: false,
            resolved_target: 0,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut s = UopSlab::new();
        let (a, ga) = s.insert(dummy(1));
        let (b, _gb) = s.insert(dummy(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).seq, 1);
        assert!(s.is_live(a, ga));
        let u = s.remove(a);
        assert_eq!(u.seq, 1);
        assert!(!s.is_live(a, ga));
        assert_eq!(s.get(b).seq, 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn generation_detects_reuse() {
        let mut s = UopSlab::new();
        let (a, ga) = s.insert(dummy(1));
        s.remove(a);
        let (a2, ga2) = s.insert(dummy(3));
        assert_eq!(a, a2, "slot should be reused");
        assert_ne!(ga, ga2);
        assert!(!s.is_live(a, ga));
        assert!(s.is_live(a2, ga2));
    }

    #[test]
    #[should_panic(expected = "empty uop slot")]
    fn double_remove_panics() {
        let mut s = UopSlab::new();
        let (a, _) = s.insert(dummy(1));
        s.remove(a);
        s.remove(a);
    }

    #[test]
    fn vpinfo_activity() {
        let mut v = VpInfo::default();
        assert!(!v.is_active());
        v.stvp_value = Some(1);
        assert!(v.is_active());
        let mut w = VpInfo::default();
        w.children.push((1, None));
        assert!(w.is_active());
    }
}
