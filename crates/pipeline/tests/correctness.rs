//! End-to-end correctness of the cycle-level machine: every configuration
//! must produce exactly the architectural state the reference interpreter
//! produces — same registers, same memory, same committed-instruction
//! count — no matter how aggressively it speculated to get there.

use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::{FReg, Program, ProgramBuilder, Reg};
use mtvp_pipeline::{FetchPolicy, Machine, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
use std::sync::Arc;

/// Run `program` through the interpreter and the machine under `cfg`,
/// asserting identical final architectural state. Returns the stats.
fn run_both(program: &Program, mut cfg: PipelineConfig) -> mtvp_pipeline::PipeStats {
    let mut bus = SimpleBus::new();
    let mut interp = Interp::new(program);
    let (ires, trace) = interp.run_traced(&mut bus, 50_000_000);
    assert!(ires.halted, "reference run of {} must halt", program.name);

    cfg.max_cycles = 200_000_000;
    let trace = Arc::new(trace);
    let mut m = Machine::new(cfg, program, Some(trace));
    let stats = m.run();
    assert!(stats.halted, "machine run of {} must halt", program.name);
    assert_eq!(
        stats.committed, ires.dyn_instrs,
        "committed count mismatch on {}",
        program.name
    );

    let regs = m.arch_int_regs();
    for (r, &reg) in regs.iter().enumerate().take(32).skip(1) {
        assert_eq!(reg, ires.int_regs[r], "r{r} mismatch on {}", program.name);
    }
    let fregs = m.arch_fp_regs();
    for (f, freg) in fregs.iter().enumerate().take(32) {
        assert_eq!(
            freg.to_bits(),
            ires.fp_regs[f].to_bits(),
            "f{f} mismatch on {}",
            program.name
        );
    }
    m.check_regfile()
        .expect("physical register file consistent");
    stats
}

/// All interesting machine configurations for differential testing.
fn configs() -> Vec<(&'static str, PipelineConfig)> {
    let base = PipelineConfig::hpca2005;
    let mut out: Vec<(&'static str, PipelineConfig)> = vec![
        ("baseline", base()),
        ("tiny", PipelineConfig::tiny()),
        ("wide-window", PipelineConfig::wide_window()),
    ];
    let mut stvp_oracle = base();
    stvp_oracle.vp = VpConfig::stvp(PredictorKind::Oracle);
    out.push(("stvp-oracle", stvp_oracle));

    let mut stvp_wf = base();
    stvp_wf.vp = VpConfig::stvp(PredictorKind::WangFranklin);
    stvp_wf.vp.selector = SelectorKind::Always;
    out.push(("stvp-wf", stvp_wf));

    let mut stvp_stride = base();
    stvp_stride.vp = VpConfig::stvp(PredictorKind::Stride);
    stvp_stride.vp.selector = SelectorKind::Always;
    out.push(("stvp-stride", stvp_stride));

    let mut mtvp_oracle = base();
    mtvp_oracle.hw_contexts = 4;
    mtvp_oracle.vp = VpConfig::mtvp(PredictorKind::Oracle);
    mtvp_oracle.vp.spawn_latency = 1;
    out.push(("mtvp4-oracle", mtvp_oracle));

    let mut mtvp_wf = base();
    mtvp_wf.hw_contexts = 8;
    mtvp_wf.vp = VpConfig::mtvp(PredictorKind::WangFranklin);
    out.push(("mtvp8-wf", mtvp_wf));

    let mut mtvp_nostall = base();
    mtvp_nostall.hw_contexts = 4;
    mtvp_nostall.vp = VpConfig::mtvp(PredictorKind::WangFranklin);
    mtvp_nostall.vp.fetch_policy = FetchPolicy::NoStall;
    mtvp_nostall.vp.selector = SelectorKind::Always;
    out.push(("mtvp4-wf-nostall", mtvp_nostall));

    let mut mtvp_dfcm = base();
    mtvp_dfcm.hw_contexts = 4;
    mtvp_dfcm.vp = VpConfig::mtvp(PredictorKind::Dfcm);
    mtvp_dfcm.vp.selector = SelectorKind::Always;
    out.push(("mtvp4-dfcm", mtvp_dfcm));

    let mut spawn_only = base();
    spawn_only.hw_contexts = 4;
    spawn_only.vp = VpConfig::spawn_only();
    out.push(("spawn-only", spawn_only));

    let mut multi = base();
    multi.hw_contexts = 8;
    multi.vp = VpConfig::mtvp(PredictorKind::WangFranklinLiberal);
    multi.vp.max_values_per_load = 4;
    multi.vp.selector = SelectorKind::L3MissOracle;
    out.push(("multi-value", multi));

    out
}

fn check_all_configs(program: &Program) {
    for (name, cfg) in configs() {
        let stats = run_both(program, cfg);
        assert!(stats.cycles > 0, "{name} ran zero cycles");
    }
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

/// Arithmetic + conditional branches, no memory.
fn prog_arith() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("arith");
    let (acc, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4));
    b.li(acc, 7).li(i, 0).li(n, 200);
    let top = b.here_label();
    b.mul(t, i, i);
    b.xor(acc, acc, t);
    b.addi(acc, acc, 13);
    b.srli(t, acc, 3);
    b.add(acc, acc, t);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

/// Stores then loads with store-to-load forwarding hazards.
fn prog_memory() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("memory");
    let buf = b.alloc_zeroed(8 * 64);
    let (base, i, n, t, v, sum) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(base, buf as i64).li(i, 0).li(n, 64).li(sum, 0);
    let top = b.here_label();
    b.slli(t, i, 3);
    b.add(t, t, base);
    b.mul(v, i, i);
    b.st(v, t, 0); // store i*i
    b.ld(v, t, 0); // immediately load it back (forwarding)
    b.add(sum, sum, v);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    // Second pass: read everything again, overwrite with sum.
    b.li(i, 0);
    let top2 = b.here_label();
    b.slli(t, i, 3);
    b.add(t, t, base);
    b.ld(v, t, 0);
    b.add(sum, sum, v);
    b.st(sum, t, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top2);
    b.halt();
    b.build()
}

/// A linked-list pointer chase (the mcf-like pattern MTVP targets).
fn prog_pointer_chase() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("chase");
    // Build a cyclic linked list of 64 nodes, each 16 bytes:
    // [next_ptr, payload].
    const NODES: u64 = 64;
    let mut node_addrs = Vec::new();
    let first = b.data_cursor();
    for i in 0..NODES {
        node_addrs.push(first + 16 * i);
    }
    // next pointers jump around deterministically (stride 17 mod 64).
    let mut words = Vec::new();
    for i in 0..NODES {
        let next = node_addrs[((i * 17 + 1) % NODES) as usize];
        words.push(next);
        words.push(i * 3 + 1);
    }
    let list = b.alloc_u64(&words);
    assert_eq!(list, first, "reserve/alloc must be contiguous");

    let (p, sum, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    b.li(p, list as i64).li(sum, 0).li(i, 0).li(n, 300);
    let top = b.here_label();
    b.ld(t, p, 8); // payload
    b.add(sum, sum, t);
    b.ld(p, p, 0); // next pointer (the dependent long-latency load)
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

/// Floating-point kernel with fp loads/stores and conversions.
fn prog_fp() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("fp");
    let xs = b.alloc_f64(&(0..64).map(|i| i as f64 * 0.5 + 1.0).collect::<Vec<_>>());
    let out = b.reserve(8 * 64);
    let (base, obase, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    let (x, acc, c) = (FReg(1), FReg(2), FReg(3));
    b.li(base, xs as i64)
        .li(obase, out as i64)
        .li(i, 0)
        .li(n, 64);
    b.li(t, 3);
    b.icvtf(c, t); // c = 3.0
    let top = b.here_label();
    b.slli(t, i, 3);
    b.add(t, t, base);
    b.fld(x, t, 0);
    b.fmul(x, x, c);
    b.fsqrt(x, x);
    b.fmadd(acc, x, c);
    b.slli(t, i, 3);
    b.add(t, t, obase);
    b.fst(acc, t, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.fcvti(Reg(6), acc);
    b.halt();
    b.build()
}

/// Function calls through jal/jr plus an indirect jump table.
fn prog_calls() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("calls");
    let ra = Reg(31);
    let (i, n, acc, t, ft) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let fun = b.label();
    let done = b.label();
    b.li(i, 0).li(n, 120).li(acc, 0);
    let top = b.here_label();
    b.jal(ra, fun);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.j(done);
    // fun: acc += i*2 + 1, return
    b.bind(fun);
    b.slli(t, i, 1);
    b.addi(t, t, 1);
    b.add(acc, acc, t);
    b.jr(ra);
    b.bind(done);
    // Indirect jump via register (jalr) to a computed target.
    let tgt = b.label();
    b.li(ft, 0); // patched below via label math: use jal-style
                 // Use a simple jalr to a label whose address we materialize.
    let after = b.label();
    b.bind(after); // address of 'after' == current; compute target below
    b.nop();
    b.bind(tgt);
    b.halt();
    // Unreachable tail (jalr above not generated — keep program simple).
    b.build()
}

/// Data-dependent (hard-to-predict) branches.
fn prog_branchy() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("branchy");
    let (x, i, n, t, a, c) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(x, 0x9E37_79B9).li(i, 0).li(n, 400).li(a, 0);
    let top = b.here_label();
    let odd = b.label();
    let join = b.label();
    // xorshift-ish PRNG
    b.srli(t, x, 7);
    b.xor(x, x, t);
    b.slli(t, x, 9);
    b.xor(x, x, t);
    b.andi(c, x, 1);
    b.bne(c, Reg(0), odd);
    b.addi(a, a, 3);
    b.j(join);
    b.bind(odd);
    b.slli(a, a, 1);
    b.addi(a, a, 1);
    b.bind(join);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

/// Stores past a value-predictable load (exercises the speculative store
/// buffer and its drain at promotion).
fn prog_store_past_load() -> Program {
    let mut b = ProgramBuilder::new();
    b.name("store-past-load");
    // A "flag" cell that never changes (perfectly predictable load) and a
    // big output region written after each flag load.
    let flag = b.alloc_u64(&[42]);
    let out = b.reserve(8 * 512);
    let (fbase, obase, i, n, t, v) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(fbase, flag as i64)
        .li(obase, out as i64)
        .li(i, 0)
        .li(n, 256);
    let top = b.here_label();
    b.ld(v, fbase, 0); // predictable load
    b.mul(t, i, v);
    b.slli(v, i, 3);
    b.add(v, v, obase);
    b.st(t, v, 0); // store depends on loaded value
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn arith_all_configs() {
    check_all_configs(&prog_arith());
}

#[test]
fn memory_all_configs() {
    check_all_configs(&prog_memory());
}

#[test]
fn pointer_chase_all_configs() {
    check_all_configs(&prog_pointer_chase());
}

#[test]
fn fp_all_configs() {
    check_all_configs(&prog_fp());
}

#[test]
fn calls_all_configs() {
    check_all_configs(&prog_calls());
}

#[test]
fn branchy_all_configs() {
    check_all_configs(&prog_branchy());
}

#[test]
fn store_past_load_all_configs() {
    check_all_configs(&prog_store_past_load());
}

#[test]
fn mtvp_actually_spawns_on_predictable_chase() {
    let program = prog_store_past_load();
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 4;
    cfg.vp = VpConfig::mtvp(PredictorKind::Oracle);
    cfg.vp.selector = SelectorKind::Always;
    cfg.vp.spawn_latency = 1;
    let stats = run_both(&program, cfg);
    assert!(stats.vp.mtvp_spawns > 0, "expected spawns: {:?}", stats.vp);
    assert!(
        stats.vp.mtvp_correct > 0,
        "expected confirmed spawns: {:?}",
        stats.vp
    );
}

#[test]
fn stvp_verifies_predictions() {
    let program = prog_store_past_load();
    let mut cfg = PipelineConfig::hpca2005();
    cfg.vp = VpConfig::stvp(PredictorKind::WangFranklin);
    cfg.vp.selector = SelectorKind::Always;
    let stats = run_both(&program, cfg);
    assert!(stats.vp.stvp_used > 0, "expected STVP uses: {:?}", stats.vp);
    assert!(stats.vp.stvp_correct > 0);
}

#[test]
fn wrong_predictions_recover_correctly() {
    // A load whose value changes every iteration: the stride predictor
    // becomes confident, then the pattern breaks — recovery must be exact.
    let mut b = ProgramBuilder::new();
    b.name("stride-break");
    let cell = b.alloc_u64(&[0]);
    let (cbase, i, n, v, acc, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(cbase, cell as i64).li(i, 0).li(n, 200).li(acc, 0);
    let top = b.here_label();
    b.ld(v, cbase, 0);
    b.add(acc, acc, v);
    // Write back i*i (stride breaks every iteration as i grows).
    b.mul(t, i, i);
    b.st(t, cbase, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let program = b.build();

    for contexts in [1, 4] {
        let mut cfg = PipelineConfig::hpca2005();
        cfg.hw_contexts = contexts;
        cfg.vp = if contexts == 1 {
            VpConfig::stvp(PredictorKind::Stride)
        } else {
            VpConfig::mtvp(PredictorKind::Stride)
        };
        cfg.vp.selector = SelectorKind::Always;
        run_both(&program, cfg);
    }
}

#[test]
fn mtvp_oracle_beats_baseline_on_pointer_chase() {
    // The headline effect: a long-latency, value-predictable dependent
    // load chain. MTVP with an oracle should clearly beat the baseline.
    let mut b = ProgramBuilder::new();
    b.name("chase-big");
    const NODES: u64 = 1 << 19; // 8MB of nodes: misses even the 4MB L3
    let first = b.data_cursor();
    let mut words = Vec::new();
    for i in 0..NODES {
        // A fixed-point-free odd-multiplier permutation scatters the chain
        // across the whole region, defeating the stride prefetcher.
        let next = first + 16 * ((i.wrapping_mul(2654435761).wrapping_add(1)) % NODES);
        words.push(next);
        words.push(i + 1);
    }
    let list = b.alloc_u64(&words);
    assert_eq!(list, first);
    let (p, sum, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    b.li(p, list as i64).li(sum, 0).li(i, 0).li(n, 600);
    let top = b.here_label();
    b.ld(t, p, 8);
    b.add(sum, sum, t);
    b.mul(t, t, t);
    b.xor(sum, sum, t);
    b.ld(p, p, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let program = b.build();

    let base_stats = run_both(&program, PipelineConfig::hpca2005());

    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 8;
    cfg.vp = VpConfig::mtvp(PredictorKind::Oracle);
    cfg.vp.spawn_latency = 1;
    cfg.vp.selector = SelectorKind::Always;
    let mtvp_stats = run_both(&program, cfg);

    let speedup = mtvp_stats.speedup_over(&base_stats);
    assert!(
        speedup > 20.0,
        "oracle MTVP should speed up a value-predictable pointer chase: {speedup:.1}% \
         (base ipc {:.3}, mtvp ipc {:.3}, spawns {})",
        base_stats.ipc(),
        mtvp_stats.ipc(),
        mtvp_stats.vp.mtvp_spawns
    );
}
