//! Lockstep differential validation of the cycle-level machine against the
//! reference interpreter over the full benchmark registry — the
//! correctness foundation the sampled-simulation state-transfer API rests
//! on.
//!
//! Three layers, each strictly stronger than the last:
//!
//! 1. **Full-run lockstep** on every registry program: the machine runs
//!    under commit-time trace validation (every committed instruction's PC
//!    and every committed load's value are asserted against the
//!    interpreter's committed-path trace, instruction for instruction),
//!    then the final registers, committed count, and the complete memory
//!    image are compared.
//! 2. **Chunked drain**: `run_until_committed` + `drain_to_arch` at
//!    arbitrary points mid-program, comparing the drained architectural
//!    state against an interpreter stepped to the same instruction index —
//!    then the *same* machine keeps running to the next sync point.
//! 3. **Mid-program injection**: an interpreter checkpoint is transplanted
//!    into a fresh machine (`load_arch_state` + `replace_memory`), which
//!    must finish with exactly the full run's architectural state.

use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::Program;
use mtvp_mem::MainMemory;
use mtvp_pipeline::{Machine, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
use mtvp_workloads::{suite, Scale};
use std::sync::Arc;

fn assert_arch_match(
    m: &Machine,
    int_regs: &[u64; 32],
    fp_regs: &[f64; 32],
    mem_checksum: u64,
    what: &str,
) {
    let regs = m.arch_int_regs();
    for (r, &reg) in regs.iter().enumerate().take(32).skip(1) {
        assert_eq!(reg, int_regs[r], "r{r} mismatch {what}");
    }
    let fregs = m.arch_fp_regs();
    for (f, freg) in fregs.iter().enumerate().take(32) {
        assert_eq!(freg.to_bits(), fp_regs[f].to_bits(), "f{f} mismatch {what}");
    }
    assert_eq!(
        m.memory().checksum(),
        mem_checksum,
        "memory image mismatch {what}"
    );
}

/// Layer 1: full run under trace validation + final-state comparison.
fn full_lockstep(program: &Program, mut cfg: PipelineConfig) {
    let mut bus = SimpleBus::new();
    let mut interp = Interp::new(program);
    let (ires, trace) = interp.run_traced(&mut bus, 50_000_000);
    assert!(ires.halted, "reference run of {} must halt", program.name);

    cfg.max_cycles = 200_000_000;
    let mut m = Machine::new(cfg, program, Some(Arc::new(trace)));
    let stats = m.run();
    assert!(stats.halted, "machine run of {} must halt", program.name);
    assert_eq!(
        stats.committed, ires.dyn_instrs,
        "committed count mismatch on {}",
        program.name
    );
    assert_arch_match(
        &m,
        &ires.int_regs,
        &ires.fp_regs,
        bus.checksum(),
        &format!("at halt of {}", program.name),
    );
    m.check_regfile().expect("register file consistent");
}

/// Layer 2: drain to architectural state at several points mid-run and
/// compare against an interpreter stepped to the same instruction index;
/// the machine continues from each drain.
fn chunked_lockstep(program: &Program, mut cfg: PipelineConfig, chunks: u64) {
    let mut bus = SimpleBus::new();
    let (ires, trace) = Interp::new(program).run_traced(&mut bus, 50_000_000);
    assert!(ires.halted);

    let mut sbus = SimpleBus::new();
    program.init_memory(&mut sbus);
    let mut si = Interp::new(program);

    cfg.max_cycles = 200_000_000;
    let mut m = Machine::new(cfg, program, Some(Arc::new(trace)));
    let chunk = ires.dyn_instrs / chunks + 1;
    let mut target = chunk;
    loop {
        let reached = m.run_until_committed(target);
        assert!(
            reached >= target || m.stats().halted,
            "machine stalled at {reached} of {} ({})",
            ires.dyn_instrs,
            program.name
        );
        m.drain_to_arch();
        while si.dyn_instrs() < reached {
            si.step(&mut sbus, None);
        }
        assert_eq!(si.dyn_instrs(), reached, "overshoot past a sync point");
        assert_arch_match(
            &m,
            &si.int_regs,
            &si.fp_regs,
            sbus.checksum(),
            &format!("at drain point {reached} of {}", program.name),
        );
        if m.stats().halted {
            break;
        }
        target = reached + chunk;
    }
    assert_eq!(m.stats().committed, ires.dyn_instrs);
    m.check_regfile().expect("register file consistent");
}

/// Layer 3: run the interpreter to `split` instructions, transplant its
/// state into a fresh machine, and run that to completion.
fn injected_lockstep(program: &Program, mut cfg: PipelineConfig, split: u64) {
    let mut bus = SimpleBus::new();
    let (ires, trace) = Interp::new(program).run_traced(&mut bus, 50_000_000);
    assert!(ires.halted && split < ires.dyn_instrs);

    // The functional leg runs directly against the machine's memory type:
    // the image is handed over wholesale, no page is copied.
    let mut mem = MainMemory::new();
    program.init_memory(&mut mem);
    let mut interp = Interp::new(program);
    while interp.dyn_instrs() < split {
        interp.step(&mut mem, None);
    }

    cfg.max_cycles = 200_000_000;
    let mut m = Machine::new(cfg, program, Some(Arc::new(trace)));
    m.load_arch_state(
        interp.pc,
        interp.dyn_instrs(),
        &interp.int_regs,
        &interp.fp_regs,
    );
    m.replace_memory(mem);
    let stats = m.run();
    assert!(stats.halted, "injected run of {} must halt", program.name);
    assert_eq!(
        stats.committed, ires.dyn_instrs,
        "absolute committed count after injection ({})",
        program.name
    );
    assert_arch_match(
        &m,
        &ires.int_regs,
        &ires.fp_regs,
        bus.checksum(),
        &format!("after injection at {split} of {}", program.name),
    );
}

fn baseline() -> PipelineConfig {
    PipelineConfig::hpca2005()
}

fn mtvp4_wf() -> PipelineConfig {
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 4;
    cfg.vp = VpConfig::mtvp(PredictorKind::WangFranklin);
    cfg.vp.selector = SelectorKind::Always;
    cfg
}

fn mtvp4_oracle() -> PipelineConfig {
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 4;
    cfg.vp = VpConfig::mtvp(PredictorKind::Oracle);
    cfg.vp.selector = SelectorKind::Always;
    cfg.vp.spawn_latency = 1;
    cfg
}

/// A registry cross-section: cold dependent walkers, hot kernels, FP
/// streamers, and the biased two-valued loads (one per regime).
const CROSS_SECTION: [&str; 5] = ["mcf", "gzip g", "mesa", "swim", "equake"];

fn build(name: &str) -> Program {
    suite()
        .iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("{name} not in registry"))
        .build(Scale::Tiny)
}

#[test]
fn registry_full_lockstep_baseline() {
    for wl in suite() {
        full_lockstep(&wl.build(Scale::Tiny), baseline());
    }
}

#[test]
fn registry_full_lockstep_mtvp() {
    for wl in suite() {
        full_lockstep(&wl.build(Scale::Tiny), mtvp4_wf());
    }
}

#[test]
fn chunked_drain_matches_interpreter() {
    for name in CROSS_SECTION {
        let p = build(name);
        chunked_lockstep(&p, baseline(), 7);
        chunked_lockstep(&p, mtvp4_wf(), 7);
    }
}

#[test]
fn chunked_drain_under_heavy_speculation() {
    // The oracle predictor with spawn latency 1 spawns on every selected
    // load, so drains routinely kill live speculative subtrees.
    for name in ["mcf", "equake"] {
        chunked_lockstep(&build(name), mtvp4_oracle(), 11);
    }
}

#[test]
fn injected_state_finishes_identically() {
    for name in CROSS_SECTION {
        let p = build(name);
        let n = {
            let mut bus = SimpleBus::new();
            Interp::new(&p).run(&mut bus, 50_000_000).dyn_instrs
        };
        for split in [n / 3, 2 * n / 3] {
            injected_lockstep(&p, baseline(), split);
            injected_lockstep(&p, mtvp4_wf(), split);
        }
    }
}

#[test]
fn drain_is_idempotent_and_safe_after_halt() {
    let p = build("gzip g");
    let mut bus = SimpleBus::new();
    let (ires, trace) = Interp::new(&p).run_traced(&mut bus, 50_000_000);
    let mut m = Machine::new(baseline(), &p, Some(Arc::new(trace)));
    let mid = ires.dyn_instrs / 2;
    m.run_until_committed(mid);
    m.drain_to_arch();
    let regs = m.arch_int_regs();
    m.drain_to_arch(); // immediately draining again changes nothing
    assert_eq!(m.arch_int_regs(), regs);
    let stats = m.run();
    assert!(stats.halted);
    m.drain_to_arch(); // after halt: a no-op
    assert_eq!(m.stats().committed, ires.dyn_instrs);
    // The drained machine still hands its memory image back.
    let mem = m.into_memory();
    assert_eq!(mem.checksum(), bus.checksum());
}
