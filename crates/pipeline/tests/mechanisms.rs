//! Targeted tests of individual pipeline mechanisms: branch prediction
//! integration, BTB/RAS, selective reissue, spawn kills, store-buffer
//! stalls, MSHR back-pressure, and wide-window memory-level parallelism.

use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::{Program, ProgramBuilder, Reg};
use mtvp_pipeline::{Machine, PipeStats, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
use std::sync::Arc;

fn run(program: &Program, cfg: PipelineConfig) -> (PipeStats, [u64; 32]) {
    let mut bus = SimpleBus::new();
    let (ires, trace) = Interp::new(program).run_traced(&mut bus, 50_000_000);
    assert!(ires.halted);
    let mut m = Machine::new(cfg, program, Some(Arc::new(trace)));
    let stats = m.run();
    assert!(stats.halted, "{} did not halt", program.name);
    assert_eq!(stats.committed, ires.dyn_instrs);
    let regs = m.arch_int_regs();
    for (r, &reg) in regs.iter().enumerate().take(32).skip(1) {
        assert_eq!(reg, ires.int_regs[r], "r{r} mismatch");
    }
    (stats, regs)
}

/// A loop whose branch pattern is predictable: mispredicts should be rare.
#[test]
fn predictable_branches_are_learned() {
    let mut b = ProgramBuilder::new();
    b.name("pred-branches");
    let (i, n, a) = (Reg(1), Reg(2), Reg(3));
    b.li(i, 0).li(n, 2000).li(a, 0);
    let top = b.here_label();
    b.addi(a, a, 1);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let (stats, _) = run(&b.build(), PipelineConfig::hpca2005());
    assert!(stats.branches.cond_committed >= 2000);
    assert!(
        stats.branches.mispredicts < 30,
        "loop branch should be learned: {} mispredicts",
        stats.branches.mispredicts
    );
}

/// An indirect call through jalr with a stable target trains the BTB.
#[test]
fn btb_learns_stable_indirect_targets() {
    let mut b = ProgramBuilder::new();
    b.name("btb");
    let (i, n, t, ra) = (Reg(1), Reg(2), Reg(3), Reg(31));
    let fun = b.label();
    b.li(i, 0).li(n, 400);
    // Materialize the function address via jal-over trick: place the
    // function first and load its index as an immediate.
    let top_entry = b.label();
    b.j(top_entry); // 0: skip over the function body
    b.bind(fun); // 1:
    b.addi(i, i, 1); // 1
    b.jr(ra); // 2
    b.bind(top_entry);
    b.li_label(t, fun);
    let top = b.here_label();
    b.jalr(ra, t);
    b.blt(i, n, top);
    b.halt();
    let (stats, _) = run(&b.build(), PipelineConfig::hpca2005());
    assert!(
        stats.branches.indirect_mispredicts < 20,
        "stable jalr target should be learned: {}",
        stats.branches.indirect_mispredicts
    );
}

/// Call/return pairs: the RAS predicts returns, so deep call loops should
/// not mispredict on the `jr r31`.
#[test]
fn ras_predicts_returns() {
    let mut b = ProgramBuilder::new();
    b.name("ras");
    let (i, n, ra) = (Reg(1), Reg(2), Reg(31));
    let fun = b.label();
    b.li(i, 0).li(n, 500);
    let top = b.here_label();
    b.jal(ra, fun);
    b.blt(i, n, top);
    b.halt();
    b.bind(fun);
    b.addi(i, i, 1);
    b.jr(ra);
    let (stats, _) = run(&b.build(), PipelineConfig::hpca2005());
    assert!(
        stats.branches.indirect_mispredicts < 10,
        "returns should be RAS-predicted: {}",
        stats.branches.indirect_mispredicts
    );
}

/// A stride predictor confidently mispredicts when the pattern breaks:
/// selective reissue must fire and state must stay exact.
#[test]
fn selective_reissue_fires_on_wrong_predictions() {
    let mut b = ProgramBuilder::new();
    b.name("reissue");
    let cell = b.alloc_u64(&[0]);
    let (cb, i, n, v, acc, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(cb, cell as i64).li(i, 0).li(n, 300).li(acc, 0);
    let top = b.here_label();
    b.ld(v, cb, 0);
    b.add(acc, acc, v); // dependent work that must re-execute
    b.xor(acc, acc, i);
    // Stride-stable value (+8) with a jump every 40 iterations: the stride
    // predictor builds confidence, then mispredicts at each jump.
    b.slli(t, i, 3);
    b.srli(v, i, 5);
    b.slli(v, v, 16);
    b.add(t, t, v);
    b.st(t, cb, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let mut cfg = PipelineConfig::hpca2005();
    cfg.vp = VpConfig::stvp(PredictorKind::Stride);
    cfg.vp.selector = SelectorKind::Always;
    let (stats, _) = run(&b.build(), cfg);
    assert!(
        stats.vp.stvp_wrong > 0,
        "expected mispredictions: {:?}",
        stats.vp
    );
    assert!(
        stats.vp.reissued_uops > 0,
        "expected reissues: {:?}",
        stats.vp
    );
}

/// Build the standard cold chase used by the spawn-oriented tests.
fn chase(n_iters: i64, with_branch_noise: bool) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("chase");
    const NODES: u64 = 1 << 15;
    let first = b.data_cursor();
    let mut words = Vec::new();
    for k in 0..NODES {
        let next = first + 64 * ((k.wrapping_mul(2654435761).wrapping_add(1)) % NODES);
        words.extend_from_slice(&[next, 7, 0, 0, 0, 0, 0, 0]);
    }
    b.alloc_u64(&words);
    let (p, sum, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    b.li(p, first as i64).li(sum, 0).li(i, 0).li(n, n_iters);
    let top = b.here_label();
    b.ld(t, p, 8);
    b.add(sum, sum, t);
    if with_branch_noise {
        let skip = b.label();
        b.mul(t, sum, p);
        b.srli(t, t, 13);
        b.andi(t, t, 1);
        b.bne(t, Reg(0), skip);
        b.xori(sum, sum, 0x1F);
        b.bind(skip);
    }
    b.st(sum, p, 16);
    b.ld(p, p, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

/// Branch mispredicts inside speculative threads kill spawn subtrees;
/// their speculatively committed work must be discarded, not counted.
#[test]
fn spawn_subtrees_die_with_wrong_path_parents() {
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 8;
    cfg.vp = VpConfig::mtvp(PredictorKind::Oracle);
    cfg.vp.selector = SelectorKind::Always;
    cfg.vp.spawn_latency = 1;
    let (stats, _) = run(&chase(400, true), cfg);
    assert!(stats.vp.mtvp_spawns > 50, "{:?}", stats.vp);
    assert!(
        stats.discarded_spec_commits > 0,
        "noisy branches should kill some speculative work: {:?}",
        stats.vp
    );
}

/// A tiny store buffer must stall speculative commit (§5.3) — and still
/// produce exact state. The program has one predictable cold load per
/// outer iteration followed by a long burst of stores, so the spawned
/// thread needs store-buffer room to make progress.
#[test]
fn tiny_store_buffer_stalls_speculation() {
    let mut b = ProgramBuilder::new();
    b.name("sb-stall");
    const NODES: u64 = 1 << 16; // 4MB header arena: header loads stay cold
    let first = b.data_cursor();
    let mut words = Vec::new();
    for k in 0..NODES {
        let next = first + 64 * ((k.wrapping_mul(2654435761).wrapping_add(1)) % NODES);
        words.extend_from_slice(&[next, 7, 0, 0, 0, 0, 0, 0]);
    }
    b.alloc_u64(&words);
    let out = b.reserve(8 * 512);
    let (p, i, n, j, t, ob) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(p, first as i64).li(i, 0).li(n, 30).li(ob, out as i64);
    let top = b.here_label();
    b.ld(p, p, 0); // cold, value-predictable chain load
    b.li(j, 0);
    let inner = b.here_label();
    b.slli(t, j, 3);
    b.add(t, t, ob);
    b.st(j, t, 0); // burst of stores while the chain load is in flight
    b.addi(j, j, 1);
    b.slti(t, j, 64);
    b.bne(t, Reg(0), inner);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 4;
    cfg.store_buffer_entries = 2;
    cfg.vp = VpConfig::mtvp(PredictorKind::Oracle);
    cfg.vp.selector = SelectorKind::Always;
    cfg.vp.spawn_latency = 1;
    let (stats, _) = run(&b.build(), cfg);
    assert!(
        stats.vp.store_buffer_stalls > 0,
        "2-entry store buffer must stall: {:?}",
        stats.vp
    );
}

/// MSHR back-pressure: a burst of independent misses must see rejections.
#[test]
fn mshr_back_pressure_rejects_excess_misses() {
    let mut b = ProgramBuilder::new();
    b.name("mshr");
    const WORDS: u64 = 1 << 21; // 16MB: far larger than the (warmed) L3
    let arr = b.alloc_u64(&vec![1u64; WORDS as usize]);
    let (base, i, n, t, acc, m) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(base, arr as i64).li(i, 0).li(n, 2000).li(acc, 0);
    b.li(m, 2654435761);
    let top = b.here_label();
    b.mul(t, i, m);
    b.andi(t, t, (WORDS - 1) as i64 & !7);
    b.slli(t, t, 3);
    b.add(t, t, base);
    b.ld(t, t, 0);
    b.add(acc, acc, t);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let (stats, _) = run(&b.build(), PipelineConfig::wide_window());
    assert!(
        stats.mem.mshr_rejections > 0,
        "wide window over scattered misses must hit the MSHR cap: {:?}",
        stats.mem
    );
}

/// The wide window extracts more memory-level parallelism than the
/// baseline on independent misses (but is still MSHR-bounded).
#[test]
fn wide_window_beats_baseline_on_independent_misses() {
    let mut b = ProgramBuilder::new();
    b.name("mlp");
    const WORDS: u64 = 1 << 21; // 16MB: the warm start only covers the tail
    let arr = b.alloc_u64(&vec![3u64; WORDS as usize]);
    let (base, i, n, t, acc, m) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(base, arr as i64).li(i, 0).li(n, 1500).li(acc, 0);
    b.li(m, 2654435761);
    let top = b.here_label();
    b.mul(t, i, m);
    b.andi(t, t, (WORDS - 1) as i64 & !7);
    b.slli(t, t, 3);
    b.add(t, t, base);
    b.ld(t, t, 0);
    b.add(acc, acc, t);
    // Enough filler that the baseline ROB covers few iterations.
    for _ in 0..12 {
        b.xor(acc, acc, i);
        b.srli(t, acc, 3);
        b.add(acc, acc, t);
    }
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let program = b.build();
    let (base_stats, _) = run(&program, PipelineConfig::hpca2005());
    let (wide_stats, _) = run(&program, PipelineConfig::wide_window());
    let speedup = wide_stats.speedup_over(&base_stats);
    assert!(
        speedup > 20.0,
        "wide window should overlap independent misses: {speedup:.1}%"
    );
}

/// Multiple-value prediction spawns several children and still recovers
/// exact state when most are wrong.
#[test]
fn multi_value_spawns_and_recovers() {
    let mut b = ProgramBuilder::new();
    b.name("multi");
    // A two-valued cell in pseudo-random order.
    const CELLS: u64 = 1 << 14;
    let first = b.data_cursor();
    let mut words = Vec::new();
    for k in 0..CELLS {
        let v = if (k.wrapping_mul(0x9E3779B9) >> 7) & 1 == 0 {
            5
        } else {
            11
        };
        words.extend_from_slice(&[v, 0, 0, 0, 0, 0, 0, 0]);
    }
    b.alloc_u64(&words);
    let (p, sum, i, n, t, m) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(p, first as i64)
        .li(sum, 0)
        .li(i, 0)
        .li(n, 600)
        .li(m, 2654435761);
    let top = b.here_label();
    b.mul(t, i, m);
    b.andi(t, t, (CELLS - 1) as i64);
    b.slli(t, t, 6);
    b.add(t, t, p);
    b.ld(t, t, 0); // loads 5 or 11 pseudo-randomly
    b.add(sum, sum, t);
    // Address of next iteration depends on the loaded class.
    b.mul(t, t, m);
    b.xor(sum, sum, t);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = 8;
    cfg.vp = VpConfig::mtvp(PredictorKind::WangFranklinLiberal);
    cfg.vp.max_values_per_load = 4;
    cfg.vp.selector = SelectorKind::Always;
    let (stats, _) = run(&b.build(), cfg);
    assert!(stats.vp.multi_value_spawns > 0, "{:?}", stats.vp);
}
