//! Tests of the spawn-tree lifecycle: nested spawns (grandchildren),
//! promotion chains, speculative halts, and context scaling.

use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::{Program, ProgramBuilder, Reg};
use mtvp_pipeline::{Machine, PipeStats, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
use std::sync::Arc;

fn run(program: &Program, cfg: PipelineConfig) -> PipeStats {
    let mut bus = SimpleBus::new();
    let (ires, trace) = Interp::new(program).run_traced(&mut bus, 50_000_000);
    assert!(ires.halted);
    let mut m = Machine::new(cfg, program, Some(Arc::new(trace)));
    let stats = m.run();
    assert!(stats.halted);
    assert_eq!(stats.committed, ires.dyn_instrs);
    let regs = m.arch_int_regs();
    for (r, &reg) in regs.iter().enumerate().take(32).skip(1) {
        assert_eq!(reg, ires.int_regs[r], "r{r} mismatch");
    }
    m.check_regfile().expect("regfile consistent");
    stats
}

/// A dependent chase with constant payloads: every iteration spawns, so
/// with N contexts the spawn tree nests N deep.
fn deep_chase(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("deep-chase");
    const NODES: u64 = 1 << 17; // 8MB: misses memory even with warm L3
    let first = b.data_cursor();
    let mut words = Vec::new();
    for k in 0..NODES {
        let next = first + 64 * ((k.wrapping_mul(2654435761).wrapping_add(1)) % NODES);
        words.extend_from_slice(&[next, 9, 0, 0, 0, 0, 0, 0]);
    }
    b.alloc_u64(&words);
    let (p, sum, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    b.li(p, first as i64).li(sum, 0).li(i, 0).li(n, iters);
    let top = b.here_label();
    b.ld(t, p, 8);
    b.add(sum, sum, t);
    b.ld(p, p, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

fn mtvp_cfg(contexts: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::hpca2005();
    cfg.hw_contexts = contexts;
    cfg.vp = VpConfig::mtvp(PredictorKind::Oracle);
    cfg.vp.selector = SelectorKind::Always;
    cfg.vp.spawn_latency = 1;
    cfg
}

#[test]
fn nested_spawn_chains_use_all_contexts() {
    let stats = run(&deep_chase(400), mtvp_cfg(8));
    assert!(
        stats.peak_contexts >= 6,
        "chain should nest deep: {}",
        stats.peak_contexts
    );
    assert!(stats.vp.mtvp_correct > 30, "{:?}", stats.vp);
}

#[test]
fn more_contexts_never_lose_on_dependent_chases() {
    let program = deep_chase(500);
    let base = run(&program, PipelineConfig::hpca2005());
    let mut last_ipc = base.ipc();
    for contexts in [2usize, 4, 8] {
        let s = run(&program, mtvp_cfg(contexts));
        assert!(
            s.ipc() > last_ipc * 0.98,
            "{contexts} contexts should not regress: {:.4} vs {:.4}",
            s.ipc(),
            last_ipc
        );
        last_ipc = s.ipc();
    }
    assert!(
        last_ipc > base.ipc() * 2.0,
        "mtvp8 should at least double a serialized chase: {:.4} vs {:.4}",
        last_ipc,
        base.ipc()
    );
}

/// The program halts immediately after a predictable long-latency load:
/// the `halt` is fetched and committed by a *speculative* child, which
/// must carry the halt through its promotion.
#[test]
fn halt_committed_in_speculative_child_ends_the_run() {
    let mut b = ProgramBuilder::new();
    b.name("spec-halt");
    const NODES: u64 = 1 << 16;
    let first = b.data_cursor();
    let mut words = Vec::new();
    for k in 0..NODES {
        let next = first + 64 * ((k.wrapping_mul(2654435761).wrapping_add(1)) % NODES);
        words.extend_from_slice(&[next, 3, 0, 0, 0, 0, 0, 0]);
    }
    b.alloc_u64(&words);
    let (p, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4));
    b.li(p, first as i64).li(i, 0).li(n, 40);
    let top = b.here_label();
    b.ld(p, p, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.ld(t, p, 8); // final long-latency load...
    b.add(t, t, i);
    b.halt(); // ...and halt right behind it
    let program = b.build();
    let stats = run(&program, mtvp_cfg(4));
    assert!(stats.halted);
}

/// Store-buffer contents of a killed child must never reach memory: a
/// wrong prediction follows a path that writes garbage to an address the
/// correct path reads later.
#[test]
fn killed_child_stores_never_leak() {
    let mut b = ProgramBuilder::new();
    b.name("no-leak");
    // Cells hold genuinely random bits (seeded build-time RNG), so the
    // pattern history cannot learn the sequence and predictions are often
    // wrong.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xDECAF);
    const CELLS: u64 = 1 << 14;
    let first = b.data_cursor();
    let mut words = Vec::new();
    for _ in 0..CELLS {
        let v = rng.gen_range(0..2u64);
        words.extend_from_slice(&[v, 0, 0, 0, 0, 0, 0, 0]);
    }
    b.alloc_u64(&words);
    let scratch = b.reserve(64);
    let (p, i, n, t, acc, s) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let mult = Reg(7);
    b.li(p, first as i64).li(i, 0).li(n, 300).li(acc, 0);
    b.li(s, scratch as i64);
    b.li(mult, 2654435761);
    let top = b.here_label();
    b.mul(t, i, mult);
    b.andi(t, t, (CELLS - 1) as i64);
    b.slli(t, t, 6);
    b.add(t, t, p);
    b.ld(t, t, 0); // 0 or 1, pseudo-random: mispredicts happen
                   // Write something derived from the loaded value, then read it back.
    b.st(t, s, 0);
    b.ld(t, s, 0);
    b.add(acc, acc, t);
    // Make the *address* of the next load depend on it.
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let program = b.build();
    let mut cfg = mtvp_cfg(8);
    cfg.vp = VpConfig::mtvp(PredictorKind::WangFranklinLiberal);
    cfg.vp.selector = SelectorKind::Always;
    cfg.vp.max_values_per_load = 2;
    let stats = run(&program, cfg);
    // Differential equality is checked by run(); also require that the
    // run actually exercised kills.
    assert!(
        stats.vp.mtvp_wrong + stats.discarded_spec_commits > 0,
        "{:?}",
        stats.vp
    );
}

/// No-stall fetch policy with nested spawns stays architecturally exact.
#[test]
fn no_stall_nested_spawns_are_exact() {
    let mut cfg = mtvp_cfg(4);
    cfg.vp.fetch_policy = mtvp_pipeline::FetchPolicy::NoStall;
    let stats = run(&deep_chase(300), cfg);
    assert!(stats.vp.mtvp_spawns > 50);
}
