//! Request/response JSON shapes of the service.
//!
//! Parsing is strict where it guards the cache (unknown config fields
//! are rejected with 422 so a typo never silently simulates the default)
//! and tolerant where the CLI is tolerant (enum fields accept the CLI
//! vocabulary — `"mtvp-nostall"`, `"wf"`, `"tiny"` — as well as the
//! canonical variant names, exactly like scenario files).
//!
//! Response construction is centralized here so the differential test
//! can rely on one invariant: the `"stats"` subtree of a `/run` response
//! is `PipeStats::to_value()` verbatim — byte-identical to what the
//! engine would serialize directly, because the vendored `Value` keeps
//! insertion order and prints deterministically.

use mtvp_engine::{
    builtin, parse_core, parse_mode, parse_predictor, parse_scale, parse_selector,
    parse_spawn_policy, CellEntry, CoreKind, L3Params, Mode, PredictorKind, RunReport,
    SamplingParams, Scale, Scenario, SelectorKind, SimConfig, SpawnPolicyKind,
};
use serde::{Deserialize, Serialize, Value};

/// Every key accepted in a `/run` request body.
const RUN_KEYS: &[&str] = &["bench", "config", "scale", "wait", "timeout_ms"];
/// Every key accepted in a `/sweep` request body.
const SWEEP_KEYS: &[&str] = &["scenario", "scale", "benches", "wait", "timeout_ms"];
/// Every key accepted in a `config` object ([`SimConfig`] fields plus the
/// `oracle` base-config switch grids also understand).
const CONFIG_KEYS: &[&str] = &[
    "mode",
    "core",
    "oracle",
    "contexts",
    "predictor",
    "selector",
    "spawn_policy",
    "spawn_latency",
    "store_buffer",
    "max_values_per_load",
    "inst_limit",
    "max_cycles",
    "prefetcher",
    "mshrs",
    "warm_start",
    "fast_forward",
    "sampling",
    "cores",
    "l3",
    "interconnect_hop",
    "cross_core_spawn",
    "co_workloads",
];

/// A validated `POST /run` body.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// Benchmark name (existence is checked by the engine).
    pub bench: String,
    /// The fully resolved, validated configuration.
    pub config: SimConfig,
    /// Build scale (default [`Scale::Small`], matching `mtvp-sim run`).
    pub scale: Scale,
    /// Respond synchronously (default) or 202 + job id.
    pub wait: bool,
    /// Per-request deadline override in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// A validated `POST /sweep` body.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// The scenario to run (built-in by name, or inline JSON).
    pub scenario: Scenario,
    /// CLI-style scale override.
    pub scale: Option<Scale>,
    /// Respond synchronously (default) or 202 + job id.
    pub wait: bool,
    /// Per-request deadline override in milliseconds.
    pub timeout_ms: Option<u64>,
}

fn reject_unknown_keys(v: &Value, known: &[&str], what: &str) -> Result<(), String> {
    let Value::Map(entries) = v else {
        return Err(format!("{what} must be a JSON object"));
    };
    for (k, _) in entries {
        if !known.contains(&k.as_str()) {
            return Err(format!(
                "unknown {what} field `{k}` (expected one of: {})",
                known.join(", ")
            ));
        }
    }
    Ok(())
}

fn mode_value(v: &Value) -> Result<Mode, String> {
    if let Ok(m) = Mode::from_value(v) {
        return Ok(m);
    }
    let s = v.as_str().ok_or_else(|| format!("bad mode {v}"))?;
    parse_mode(s).map_err(|e| e.0)
}

fn scale_value(v: &Value) -> Result<Scale, String> {
    if let Ok(s) = Scale::from_value(v) {
        return Ok(s);
    }
    let s = v.as_str().ok_or_else(|| format!("bad scale {v}"))?;
    parse_scale(s).map_err(|e| e.0)
}

fn usize_field(v: &Value, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn u64_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn bool_field(v: &Value, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

/// Resolve a request `config` object into a validated [`SimConfig`]:
/// start from the mode's default (or oracle) configuration and overlay
/// each present field. A full serialized `SimConfig` round-trips exactly;
/// a sparse `{"mode": "mtvp", "contexts": 4}` works too.
///
/// # Errors
/// Returns a message naming the offending field; unknown fields are
/// rejected rather than ignored.
pub fn config_from_value(v: Option<&Value>) -> Result<SimConfig, String> {
    let empty = Value::Map(Vec::new());
    let v = v.unwrap_or(&empty);
    reject_unknown_keys(v, CONFIG_KEYS, "config")?;
    let mode = match v.get("mode") {
        None | Some(Value::Null) => Mode::Mtvp,
        Some(m) => mode_value(m)?,
    };
    let oracle = bool_field(v, "oracle")?.unwrap_or(false);
    let mut cfg = if oracle {
        SimConfig::oracle(mode)
    } else {
        SimConfig::new(mode)
    };
    if let Some(cv) = v.get("core").filter(|x| !matches!(x, Value::Null)) {
        cfg.core = match CoreKind::from_value(cv) {
            Ok(k) => k,
            Err(_) => {
                let s = cv.as_str().ok_or_else(|| format!("bad core {cv}"))?;
                parse_core(s).map_err(|e| e.0)?
            }
        };
    }
    if let Some(n) = usize_field(v, "contexts")? {
        cfg.contexts = n;
    }
    if let Some(p) = v.get("predictor").filter(|x| !matches!(x, Value::Null)) {
        cfg.predictor = match PredictorKind::from_value(p) {
            Ok(k) => k,
            Err(_) => {
                let s = p.as_str().ok_or_else(|| format!("bad predictor {p}"))?;
                parse_predictor(s).map_err(|e| e.0)?
            }
        };
    }
    if let Some(sv) = v.get("selector").filter(|x| !matches!(x, Value::Null)) {
        cfg.selector = match SelectorKind::from_value(sv) {
            Ok(k) => k,
            Err(_) => {
                let s = sv.as_str().ok_or_else(|| format!("bad selector {sv}"))?;
                parse_selector(s).map_err(|e| e.0)?
            }
        };
    }
    if let Some(pv) = v.get("spawn_policy").filter(|x| !matches!(x, Value::Null)) {
        cfg.spawn_policy = match SpawnPolicyKind::from_value(pv) {
            Ok(k) => k,
            Err(_) => {
                let s = pv
                    .as_str()
                    .ok_or_else(|| format!("bad spawn_policy {pv}"))?;
                parse_spawn_policy(s).map_err(|e| e.0)?
            }
        };
    }
    if let Some(n) = u64_field(v, "spawn_latency")? {
        cfg.spawn_latency = n;
    }
    if let Some(n) = usize_field(v, "store_buffer")? {
        cfg.store_buffer = n;
    }
    if let Some(n) = usize_field(v, "max_values_per_load")? {
        cfg.max_values_per_load = n;
    }
    if let Some(n) = u64_field(v, "inst_limit")? {
        cfg.inst_limit = n;
    }
    if let Some(n) = u64_field(v, "max_cycles")? {
        cfg.max_cycles = n;
    }
    if let Some(b) = bool_field(v, "prefetcher")? {
        cfg.prefetcher = b;
    }
    if let Some(n) = usize_field(v, "mshrs")? {
        cfg.mshrs = n;
    }
    if let Some(b) = bool_field(v, "warm_start")? {
        cfg.warm_start = b;
    }
    if let Some(b) = bool_field(v, "fast_forward")? {
        cfg.fast_forward = b;
    }
    if let Some(sv) = v.get("sampling").filter(|x| !matches!(x, Value::Null)) {
        cfg.sampling = Some(match SamplingParams::from_value(sv) {
            Ok(p) => p,
            Err(_) => {
                let s = sv
                    .as_str()
                    .ok_or_else(|| format!("bad sampling schedule {sv}"))?;
                SamplingParams::parse(s).map_err(|e| e.0)?
            }
        });
    }
    if let Some(n) = usize_field(v, "cores")? {
        cfg.cores = n;
    }
    if let Some(lv) = v.get("l3").filter(|x| !matches!(x, Value::Null)) {
        cfg.l3 = match L3Params::from_value(lv) {
            Ok(p) => p,
            Err(_) => {
                let s = lv.as_str().ok_or_else(|| format!("bad l3 shape {lv}"))?;
                L3Params::parse(s).map_err(|e| e.0)?
            }
        };
    }
    if let Some(n) = u64_field(v, "interconnect_hop")? {
        cfg.interconnect_hop = n;
    }
    if let Some(b) = bool_field(v, "cross_core_spawn")? {
        cfg.cross_core_spawn = b;
    }
    if let Some(cv) = v.get("co_workloads").filter(|x| !matches!(x, Value::Null)) {
        cfg.co_workloads = Vec::from_value(cv)
            .map_err(|_| "field `co_workloads` must be a string list".to_string())?;
    }
    cfg.validate().map_err(|e| e.0)?;
    Ok(cfg)
}

/// Parse and validate a `POST /run` body.
///
/// # Errors
/// Returns a 422-worthy message for a missing/unknown field or an
/// invalid configuration.
pub fn parse_run_request(body: &Value) -> Result<RunRequest, String> {
    reject_unknown_keys(body, RUN_KEYS, "run request")?;
    let bench = body
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("run request requires a string `bench`")?
        .to_string();
    let config = config_from_value(body.get("config"))?;
    let scale = match body.get("scale") {
        None | Some(Value::Null) => Scale::Small,
        Some(s) => scale_value(s)?,
    };
    let wait = bool_field(body, "wait")?.unwrap_or(true);
    let timeout_ms = u64_field(body, "timeout_ms")?;
    Ok(RunRequest {
        bench,
        config,
        scale,
        wait,
        timeout_ms,
    })
}

/// Parse and validate a `POST /sweep` body. `scenario` is either the
/// name of a built-in or an inline scenario object; an optional
/// `benches` list narrows the benchmark filter.
///
/// # Errors
/// Returns a 422-worthy message for an unknown built-in, a malformed
/// inline scenario, or an invalid field.
pub fn parse_sweep_request(body: &Value) -> Result<SweepRequest, String> {
    reject_unknown_keys(body, SWEEP_KEYS, "sweep request")?;
    let mut scenario = match body.get("scenario") {
        Some(Value::Str(name)) => builtin(name)
            .ok_or_else(|| format!("unknown built-in scenario `{name}` (see GET /scenarios)"))?,
        Some(v @ Value::Map(_)) => Scenario::from_value(v).map_err(|e| e.0)?,
        _ => return Err("sweep request requires a `scenario` (name or object)".to_string()),
    };
    if let Some(b) = body.get("benches").filter(|x| !matches!(x, Value::Null)) {
        let benches: Vec<String> = Vec::from_value(b)
            .map_err(|_| "field `benches` must be a list of benchmark names".to_string())?;
        scenario.benches = benches;
    }
    // Surface expansion errors (duplicate labels, dangling baseline,
    // invalid grid points) at parse time so they map to 422, not 500.
    scenario.configs().map_err(|e| e.0)?;
    let scale = match body.get("scale") {
        None | Some(Value::Null) => None,
        Some(s) => Some(scale_value(s)?),
    };
    let wait = bool_field(body, "wait")?.unwrap_or(true);
    let timeout_ms = u64_field(body, "timeout_ms")?;
    Ok(SweepRequest {
        scenario,
        scale,
        wait,
        timeout_ms,
    })
}

/// The `/run` success payload. `stats` is `PipeStats::to_value()`
/// verbatim (the differential test depends on this).
pub fn run_result_json(
    job: u64,
    entry: &CellEntry,
    cached: bool,
    coalesced: bool,
    elapsed_us: u64,
) -> Value {
    Value::Map(vec![
        ("job".to_string(), Value::U64(job)),
        ("bench".to_string(), Value::Str(entry.bench.clone())),
        ("scale".to_string(), Value::Str(entry.scale.clone())),
        ("config".to_string(), entry.config.to_value()),
        ("cached".to_string(), Value::Bool(cached)),
        ("coalesced".to_string(), Value::Bool(coalesced)),
        ("dyn_instrs".to_string(), Value::U64(entry.dyn_instrs)),
        ("ipc".to_string(), Value::F64(entry.stats.ipc())),
        ("stats".to_string(), entry.stats.to_value()),
        ("elapsed_us".to_string(), Value::U64(elapsed_us)),
    ])
}

/// The sweep report payload (shared by every coalesced `/sweep` caller;
/// the per-request `job`/`coalesced` fields are added by the wrapper).
pub fn sweep_report_json(scenario: &Scenario, report: &RunReport) -> Value {
    let mut cells = Vec::with_capacity(report.sweep.cells.len());
    for c in &report.sweep.cells {
        let mut fields = vec![
            ("bench".to_string(), Value::Str(c.bench.clone())),
            ("config".to_string(), Value::Str(c.config.clone())),
            ("ipc".to_string(), Value::F64(c.stats.ipc())),
            ("cycles".to_string(), Value::U64(c.stats.cycles)),
        ];
        if let Some(base) = &scenario.baseline {
            if let Some(s) = report.sweep.speedup(&c.bench, &c.config, base) {
                fields.push(("speedup_pct".to_string(), Value::F64(s)));
            }
        }
        cells.push(Value::Map(fields));
    }
    let mut fields = vec![
        ("scenario".to_string(), Value::Str(scenario.name.clone())),
        (
            "scale".to_string(),
            Value::Str(mtvp_engine::key::scale_tag(report.scale).to_string()),
        ),
        (
            "baseline".to_string(),
            scenario
                .baseline
                .as_ref()
                .map(|b| Value::Str(b.clone()))
                .unwrap_or(Value::Null),
        ),
        (
            "total_cells".to_string(),
            Value::U64(report.total_cells as u64),
        ),
        (
            "cache_hits".to_string(),
            Value::U64(report.cache_hits as u64),
        ),
        ("simulated".to_string(), Value::U64(report.simulated as u64)),
        ("summary".to_string(), Value::Str(report.summary())),
        ("cells".to_string(), Value::Seq(cells)),
    ];
    if let Some(base) = &scenario.baseline {
        let labels: Vec<String> = if scenario.series.is_empty() {
            report
                .sweep
                .cells
                .iter()
                .map(|c| c.config.clone())
                .filter(|l| l != base)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        } else {
            scenario.series.clone()
        };
        let geo = labels
            .into_iter()
            .map(|l| {
                let s = report.sweep.geomean_speedup(None, &l, base);
                (l, Value::F64(s))
            })
            .collect();
        fields.push(("geomean_speedup_pct".to_string(), Value::Map(geo)));
    }
    Value::Map(fields)
}

/// The 202 payload for an accepted asynchronous job.
pub fn accepted_json(job: u64) -> Value {
    Value::Map(vec![
        ("job".to_string(), Value::U64(job)),
        ("state".to_string(), Value::Str("queued".to_string())),
        ("poll".to_string(), Value::Str(format!("/jobs/{job}"))),
        (
            "result".to_string(),
            Value::Str(format!("/jobs/{job}/result")),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_run_request_resolves_defaults() {
        let body = serde_json::from_str(
            r#"{"bench": "mcf", "scale": "tiny",
                "config": {"mode": "baseline"}}"#,
        )
        .unwrap();
        let r = parse_run_request(&body).unwrap();
        assert_eq!(r.bench, "mcf");
        assert_eq!(r.scale, Scale::Tiny);
        assert_eq!(r.config, SimConfig::new(Mode::Baseline));
        assert!(r.wait);
        assert_eq!(r.timeout_ms, None);
    }

    #[test]
    fn full_simconfig_round_trips_through_the_request_shape() {
        let mut cfg = SimConfig::oracle(Mode::Mtvp);
        cfg.contexts = 4;
        cfg.spawn_latency = 8;
        let back = config_from_value(Some(&cfg.to_value())).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn sampling_schedule_round_trips_and_parses_cli_form() {
        let mut cfg = SimConfig::new(Mode::Mtvp);
        cfg.sampling = Some(SamplingParams {
            window: 2_000,
            interval: 120_000,
            warmup: 4_000,
        });
        let back = config_from_value(Some(&cfg.to_value())).unwrap();
        assert_eq!(back, cfg);
        // The CLI string form is accepted too, like predictor/selector.
        let body =
            serde_json::from_str(r#"{"mode": "mtvp", "sampling": "2000:120000:4000"}"#).unwrap();
        assert_eq!(config_from_value(Some(&body)).unwrap(), cfg);
    }

    #[test]
    fn spawn_policy_round_trips_and_parses_cli_form() {
        let mut cfg = SimConfig::new(Mode::Mtvp);
        cfg.spawn_policy = SpawnPolicyKind::Static;
        let back = config_from_value(Some(&cfg.to_value())).unwrap();
        assert_eq!(back, cfg);
        // CLI vocabulary is accepted like the other enum fields.
        let body = serde_json::from_str(r#"{"mode": "mtvp", "spawn_policy": "static"}"#).unwrap();
        assert_eq!(config_from_value(Some(&body)).unwrap(), cfg);
        // The static policy is still validated against the machine shape.
        let bad =
            serde_json::from_str(r#"{"mode": "baseline", "spawn_policy": "static"}"#).unwrap();
        assert!(config_from_value(Some(&bad)).is_err());
    }

    #[test]
    fn core_field_parses_cli_form_and_validates() {
        let body = serde_json::from_str(r#"{"mode": "baseline", "core": "inorder"}"#).unwrap();
        let cfg = config_from_value(Some(&body)).unwrap();
        assert_eq!(cfg.core, CoreKind::InOrderScalar);
        let back = config_from_value(Some(&cfg.to_value())).unwrap();
        assert_eq!(back, cfg);
        // The in-order core rejects MTVP knobs at validation time.
        let body = serde_json::from_str(r#"{"mode": "mtvp", "core": "inorder"}"#).unwrap();
        let e = config_from_value(Some(&body)).unwrap_err();
        assert!(e.contains("in-order"), "{e}");
    }

    #[test]
    fn unknown_and_invalid_fields_are_rejected() {
        for bad in [
            r#"{"bench": "mcf", "confg": {}}"#,
            r#"{"bench": "mcf", "config": {"contexts": "four"}}"#,
            r#"{"bench": "mcf", "config": {"warp": 9}}"#,
            r#"{"bench": "mcf", "config": {"mode": "warp9"}}"#,
            r#"{"config": {}}"#,
            r#"{"bench": "mcf", "scale": "galactic"}"#,
            r#"{"bench": "mcf", "config": {"mode": "baseline", "contexts": 8}}"#,
        ] {
            let body = serde_json::from_str(bad).unwrap();
            assert!(parse_run_request(&body).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn sweep_requests_resolve_builtins_and_inline_scenarios() {
        let body =
            serde_json::from_str(r#"{"scenario": "smoke", "scale": "tiny", "benches": ["mcf"]}"#)
                .unwrap();
        let r = parse_sweep_request(&body).unwrap();
        assert_eq!(r.scenario.name, "smoke");
        assert_eq!(r.scenario.benches, vec!["mcf".to_string()]);
        assert_eq!(r.scale, Some(Scale::Tiny));

        let inline = serde_json::from_str(
            r#"{"scenario": {"name": "mini", "grids": [{"mode": "baseline"}]}}"#,
        )
        .unwrap();
        assert_eq!(parse_sweep_request(&inline).unwrap().scenario.name, "mini");

        for bad in [
            r#"{"scenario": "warp9"}"#,
            r#"{}"#,
            r#"{"scenario": {"name": "x", "grids": []}}"#,
        ] {
            let body = serde_json::from_str(bad).unwrap();
            assert!(parse_sweep_request(&body).is_err(), "accepted: {bad}");
        }
    }
}
