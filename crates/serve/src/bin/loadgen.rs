//! `mtvp-loadgen`: closed- and open-loop load generator for
//! `mtvp-sim serve`.
//!
//! ```text
//! # closed loop: N clients, each issuing sequential requests
//! mtvp-loadgen --addr 127.0.0.1:8707 --clients 32 --requests 4 \
//!              --bench mcf --mode baseline --scale tiny
//! # open loop: offer a fixed rate and report SLO compliance
//! mtvp-loadgen --addr 127.0.0.1:8707 --rate 200 --duration-ms 5000 \
//!              --path /health
//! ```
//!
//! Prints a JSON report (statuses, resets, latency percentiles; in open
//! loop also achieved throughput and error budget) to stdout. Exits 0 on
//! a clean run, 1 on bad usage, 2 if any transport reset was observed or
//! a disallowed status came back.

use mtvp_serve::loadgen::{run, run_open_loop, LoadgenOptions, OpenLoopOptions};

fn usage() -> ! {
    eprintln!(
        "usage: mtvp-loadgen [--addr HOST:PORT] [--clients N] [--requests N]\n\
         \x20                   [--rate RPS --duration-ms N]\n\
         \x20                   [--path /run] [--body JSON | --bench B --mode M --scale S]\n\
         \x20                   [--timeout-ms N] [--allow-statuses 200,503]\n\
         \n\
         Drives load against an mtvp-sim serve instance and prints a JSON\n\
         report. Default is closed-loop (N clients, sequential requests);\n\
         --rate switches to open-loop at a fixed offered rate with SLO\n\
         reporting (achieved rps, p50/p99, error budget). Without\n\
         --body/--bench the request is a GET."
    );
    std::process::exit(1);
}

fn main() {
    let mut opts = LoadgenOptions::default();
    let mut bench: Option<String> = None;
    let mut mode = "baseline".to_string();
    let mut scale = "tiny".to_string();
    let mut allow: Option<Vec<u16>> = None;
    let mut rate: Option<f64> = None;
    let mut duration_ms = 5_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr"),
            "--clients" => opts.clients = take("--clients").parse().unwrap_or_else(|_| usage()),
            "--requests" => {
                opts.requests_per_client = take("--requests").parse().unwrap_or_else(|_| usage());
            }
            "--path" => opts.path = take("--path"),
            "--body" => opts.body = Some(take("--body")),
            "--bench" => bench = Some(take("--bench")),
            "--mode" => mode = take("--mode"),
            "--scale" => scale = take("--scale"),
            "--timeout-ms" => {
                opts.timeout_ms = take("--timeout-ms").parse().unwrap_or_else(|_| usage());
            }
            "--rate" => rate = Some(take("--rate").parse().unwrap_or_else(|_| usage())),
            "--duration-ms" => {
                duration_ms = take("--duration-ms").parse().unwrap_or_else(|_| usage());
            }
            "--allow-statuses" => {
                allow = Some(
                    take("--allow-statuses")
                        .split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if opts.body.is_none() {
        if let Some(b) = bench {
            opts.body = Some(format!(
                r#"{{"bench": "{b}", "scale": "{scale}", "config": {{"mode": "{mode}"}}}}"#
            ));
        }
    }
    let (doc, statuses, resets) = match rate {
        Some(rate) => {
            let report = run_open_loop(&OpenLoopOptions {
                addr: opts.addr,
                rate,
                duration_ms,
                path: opts.path,
                body: opts.body,
                timeout_ms: opts.timeout_ms,
            });
            (report.to_value(), report.statuses, report.resets)
        }
        None => {
            let report = run(&opts);
            (report.to_value(), report.statuses.clone(), report.resets)
        }
    };
    println!("{doc}");
    let mut bad = resets > 0;
    if let Some(allowed) = allow {
        for (status, n) in &statuses {
            if *n > 0 && !allowed.contains(status) {
                eprintln!("disallowed status {status} seen {n} time(s)");
                bad = true;
            }
        }
    }
    if resets > 0 {
        eprintln!("{resets} transport reset(s) observed");
    }
    std::process::exit(if bad { 2 } else { 0 });
}
