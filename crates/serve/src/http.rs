//! Hand-written incremental HTTP/1.1 message handling.
//!
//! The [`Parser`] is a byte-at-a-time-safe state machine: bytes arrive in
//! whatever chunks the kernel hands us, and parsing a request fed in N
//! arbitrary pieces yields exactly the same [`Request`] as parsing it in
//! one shot (property-tested in `tests/http_parser.rs`). Header and body
//! sizes are bounded up front — an oversized or malformed request maps to
//! a 4xx status, never a panic or unbounded allocation.
//!
//! Only the subset of HTTP/1.1 this service needs is implemented:
//! `Content-Length` bodies (no chunked transfer coding), one request per
//! connection (`Connection: close` on every response), CRLF line endings.

/// Maximum bytes of request line + headers (431 beyond this).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum bytes of request body (413 beyond this).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A fully parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as received.
    pub method: String,
    /// Request target, including any query string (`/jobs/3?wait_ms=50`).
    pub target: String,
    /// Protocol version (`HTTP/1.0` or `HTTP/1.1`).
    pub version: String,
    /// Header fields in arrival order, names as received, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target split into path and query string (`?` excluded).
    pub fn path_and_query(&self) -> (&str, Option<&str>) {
        match self.target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (self.target.as_str(), None),
        }
    }

    /// Value of query parameter `key`, if present (`k=v&k2=v2` syntax).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, query) = self.path_and_query();
        query?
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed. Each variant maps to the 4xx
/// status the server answers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Request line + headers exceed [`MAX_HEADER_BYTES`] → 431.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Anything else syntactically wrong → 400.
    Malformed(String),
}

impl ParseError {
    /// The HTTP status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::Malformed(_) => 400,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::HeadersTooLarge => {
                write!(f, "request headers exceed {MAX_HEADER_BYTES} bytes")
            }
            ParseError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parser state between [`Parser::feed`] calls.
enum State {
    /// Accumulating the request line + headers (terminator not yet seen).
    Headers,
    /// Headers parsed; waiting for `need` body bytes.
    Body {
        method: String,
        target: String,
        version: String,
        headers: Vec<(String, String)>,
        need: usize,
    },
    /// A previous feed returned an error; the connection is poisoned.
    Failed,
}

/// Incremental request parser. Feed it bytes as they arrive; it returns a
/// complete [`Request`] as soon as one is available.
pub struct Parser {
    buf: Vec<u8>,
    state: State,
}

impl Default for Parser {
    fn default() -> Self {
        Parser::new()
    }
}

impl Parser {
    /// A fresh parser awaiting a request line.
    pub fn new() -> Parser {
        Parser {
            buf: Vec::new(),
            state: State::Headers,
        }
    }

    /// Append `bytes` and try to complete a request.
    ///
    /// Returns `Ok(Some(request))` once the full request (headers + body)
    /// has arrived, `Ok(None)` while more bytes are needed.
    ///
    /// # Errors
    /// Returns the [`ParseError`] describing the first violation; after an
    /// error the parser stays failed (the server closes the connection).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        if matches!(self.state, State::Failed) {
            return Err(ParseError::Malformed("parser already failed".into()));
        }
        self.buf.extend_from_slice(bytes);
        match self.advance() {
            Ok(r) => Ok(r),
            Err(e) => {
                self.state = State::Failed;
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, ParseError> {
        if matches!(self.state, State::Headers) {
            let Some(end) = find_terminator(&self.buf) else {
                if self.buf.len() > MAX_HEADER_BYTES {
                    return Err(ParseError::HeadersTooLarge);
                }
                return Ok(None);
            };
            if end > MAX_HEADER_BYTES {
                return Err(ParseError::HeadersTooLarge);
            }
            let head: Vec<u8> = self.buf.drain(..end + 4).collect();
            let (method, target, version, headers) = parse_head(&head[..end])?;
            let need = content_length(&headers)?;
            if need > MAX_BODY_BYTES {
                return Err(ParseError::BodyTooLarge);
            }
            self.state = State::Body {
                method,
                target,
                version,
                headers,
                need,
            };
        }
        if let State::Body { need, .. } = &self.state {
            if self.buf.len() < *need {
                return Ok(None);
            }
            let State::Body {
                method,
                target,
                version,
                headers,
                need,
            } = std::mem::replace(&mut self.state, State::Headers)
            else {
                unreachable!("matched Body above");
            };
            let body: Vec<u8> = self.buf.drain(..need).collect();
            return Ok(Some(Request {
                method,
                target,
                version,
                headers,
                body,
            }));
        }
        Ok(None)
    }
}

/// Offset of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the request line and header block (no trailing terminator).
#[allow(clippy::type_complexity)] // one-shot destructuring of the head
fn parse_head(head: &[u8]) -> Result<(String, String, String, Vec<(String, String)>), ParseError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ParseError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::Malformed(format!("bad method `{method}`")));
    }
    if !(target.starts_with('/') || target == "*") {
        return Err(ParseError::Malformed(format!("bad target `{target}`")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header line `{line}`")));
        };
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
        {
            return Err(ParseError::Malformed(format!("bad header name `{name}`")));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok((
        method.to_string(),
        target.to_string(),
        version.to_string(),
        headers,
    ))
}

/// The declared body length: 0 without a `Content-Length` header.
fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut found: Option<usize> = None;
    for (name, value) in headers {
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::Malformed(
                "chunked transfer coding is not supported".into(),
            ));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| ParseError::Malformed(format!("bad Content-Length `{value}`")))?;
            if let Some(prev) = found {
                if prev != n {
                    return Err(ParseError::Malformed(
                        "conflicting Content-Length headers".into(),
                    ));
                }
            }
            found = Some(n);
        }
    }
    Ok(found.unwrap_or(0))
}

/// A response under construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra header fields (Content-Type/Length and Connection are
    /// emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error response with a uniform `{"error": ...}` shape.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            serde_json::json!({ "error": message }).to_string() + "\n",
        )
    }

    /// Add a header field.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize status line, headers and body to `w`. Every response
    /// carries `Connection: close` — the server handles one request per
    /// connection (see the module docs).
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_text(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_shot(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        Parser::new().feed(bytes)
    }

    #[test]
    fn parses_a_simple_get() {
        let req = one_shot(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/health");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = one_shot(
            b"POST /run?wait_ms=50 HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .expect("complete");
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.path_and_query().0, "/run");
        assert_eq!(req.query_param("wait_ms"), Some("50"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn incremental_feeding_completes_exactly_once() {
        let bytes = b"POST /run HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let mut p = Parser::new();
        for (i, b) in bytes.iter().enumerate() {
            let got = p.feed(std::slice::from_ref(b)).unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "complete too early at byte {i}");
            } else {
                assert_eq!(got.expect("complete at last byte").body, b"abc");
            }
        }
    }

    #[test]
    fn rejects_oversized_headers_and_bodies() {
        let mut p = Parser::new();
        let big = vec![b'A'; MAX_HEADER_BYTES + 2];
        assert_eq!(p.feed(&big), Err(ParseError::HeadersTooLarge));
        // Poisoned after an error.
        assert!(p.feed(b"").is_err());

        let req = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(one_shot(req.as_bytes()), Err(ParseError::BodyTooLarge));
        assert_eq!(ParseError::HeadersTooLarge.status(), 431);
        assert_eq!(ParseError::BodyTooLarge.status(), 413);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
        ] {
            let got = one_shot(bad);
            assert!(
                matches!(got, Err(ParseError::Malformed(_))),
                "{bad:?} -> {got:?}"
            );
        }
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n{\"ok\":true}"));
    }
}
