//! The job table: every accepted `/run` and `/sweep` request becomes a
//! job with a process-wide monotonic id, observable through
//! `GET /jobs/<id>` and `GET /jobs/<id>/result` (including long-polling
//! with a deadline). Synchronous requests pass through the same table so
//! job ids stay strictly monotonic across the whole request stream —
//! which is what the load test asserts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Lifecycle of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the bounded queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result JSON is available.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobState {
    /// Lowercase wire name (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Point-in-time copy of one job's externally visible state.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Monotonic job id.
    pub id: u64,
    /// Job kind (`"run"` or `"sweep"`).
    pub kind: String,
    /// Human-readable description (bench/config or scenario name).
    pub detail: String,
    /// Current state.
    pub state: JobState,
    /// Result JSON, present once `Done`.
    pub result: Option<String>,
    /// Error message, present once `Failed`.
    pub error: Option<String>,
}

struct JobRecord {
    kind: String,
    detail: String,
    state: JobState,
    result: Option<String>,
    error: Option<String>,
}

/// Registry of all jobs the server has accepted, with monotonic ids.
pub struct JobTable {
    next: AtomicU64,
    inner: Mutex<HashMap<u64, JobRecord>>,
    changed: Condvar,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> JobTable {
        JobTable {
            next: AtomicU64::new(1),
            inner: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
        }
    }

    /// Register a new job in `Queued` state and return its id. Ids are
    /// allocated from a single atomic counter, so they are strictly
    /// monotonic in allocation order.
    pub fn create(&self, kind: &str, detail: &str) -> u64 {
        let id = self.next.fetch_add(1, Ordering::SeqCst);
        self.inner.lock().expect("job table").insert(
            id,
            JobRecord {
                kind: kind.to_string(),
                detail: detail.to_string(),
                state: JobState::Queued,
                result: None,
                error: None,
            },
        );
        id
    }

    /// Mark `id` as running.
    pub fn start(&self, id: u64) {
        if let Some(r) = self.inner.lock().expect("job table").get_mut(&id) {
            r.state = JobState::Running;
        }
        self.changed.notify_all();
    }

    /// Publish the terminal outcome of `id` and wake any pollers.
    pub fn finish(&self, id: u64, outcome: Result<String, String>) {
        if let Some(r) = self.inner.lock().expect("job table").get_mut(&id) {
            match outcome {
                Ok(json) => {
                    r.state = JobState::Done;
                    r.result = Some(json);
                }
                Err(e) => {
                    r.state = JobState::Failed;
                    r.error = Some(e);
                }
            }
        }
        self.changed.notify_all();
    }

    /// Drop `id` from the table (a rejected async enqueue).
    pub fn remove(&self, id: u64) {
        self.inner.lock().expect("job table").remove(&id);
    }

    /// Snapshot `id`, if known.
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        self.inner
            .lock()
            .expect("job table")
            .get(&id)
            .map(|r| JobSnapshot {
                id,
                kind: r.kind.clone(),
                detail: r.detail.clone(),
                state: r.state,
                result: r.result.clone(),
                error: r.error.clone(),
            })
    }

    /// Block until `id` reaches a terminal state or `deadline` passes.
    /// Returns the final snapshot, `Ok(None)` for an unknown id, or
    /// `Err(snapshot_at_deadline)` on timeout.
    #[allow(clippy::result_large_err)] // the Err snapshot is the payload, not an error path
    pub fn wait_terminal(
        &self,
        id: u64,
        deadline: Instant,
    ) -> Result<Option<JobSnapshot>, JobSnapshot> {
        let mut inner = self.inner.lock().expect("job table");
        loop {
            let Some(r) = inner.get(&id) else {
                return Ok(None);
            };
            if r.state.is_terminal() {
                let snap = self.snapshot_locked(id, r);
                return Ok(Some(snap));
            }
            let now = Instant::now();
            if now >= deadline {
                let snap = self.snapshot_locked(id, r);
                return Err(snap);
            }
            let (guard, _) = self
                .changed
                .wait_timeout(inner, deadline - now)
                .expect("job table");
            inner = guard;
        }
    }

    fn snapshot_locked(&self, id: u64, r: &JobRecord) -> JobSnapshot {
        JobSnapshot {
            id,
            kind: r.kind.clone(),
            detail: r.detail.clone(),
            state: r.state,
            result: r.result.clone(),
            error: r.error.clone(),
        }
    }

    /// Number of jobs ever created (next id minus one).
    pub fn created(&self) -> u64 {
        self.next.load(Ordering::SeqCst) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ids_are_monotonic_and_lifecycle_is_observable() {
        let t = JobTable::new();
        let a = t.create("run", "mcf/base");
        let b = t.create("sweep", "smoke");
        assert!(b > a);
        assert_eq!(t.created(), 2);
        assert_eq!(t.snapshot(a).unwrap().state, JobState::Queued);
        t.start(a);
        assert_eq!(t.snapshot(a).unwrap().state, JobState::Running);
        t.finish(a, Ok("{}".to_string()));
        let s = t.snapshot(a).unwrap();
        assert_eq!(s.state, JobState::Done);
        assert_eq!(s.result.as_deref(), Some("{}"));
        t.finish(b, Err("boom".to_string()));
        assert_eq!(t.snapshot(b).unwrap().state, JobState::Failed);
        assert!(t.snapshot(999).is_none());
    }

    #[test]
    fn wait_terminal_times_out_and_completes() {
        let t = std::sync::Arc::new(JobTable::new());
        let id = t.create("run", "slow");
        // Unknown id resolves immediately.
        assert!(matches!(
            t.wait_terminal(999, Instant::now() + Duration::from_millis(10)),
            Ok(None)
        ));
        // Timeout returns the in-flight snapshot.
        let timed_out = t.wait_terminal(id, Instant::now() + Duration::from_millis(20));
        assert_eq!(timed_out.unwrap_err().state, JobState::Queued);
        // A finisher on another thread wakes the poller.
        let finisher = {
            let t = std::sync::Arc::clone(&t);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                t.finish(id, Ok("\"r\"".to_string()));
            })
        };
        let done = t
            .wait_terminal(id, Instant::now() + Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(done.state, JobState::Done);
        finisher.join().unwrap();
    }
}
