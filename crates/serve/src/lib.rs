//! # mtvp-serve
//!
//! A from-scratch multithreaded HTTP/1.1 JSON service exposing the
//! `mtvp-engine` experiment engine over the network — `std::net` and the
//! vendored serde shim only, no external dependencies.
//!
//! Endpoints:
//!
//! | Method & path            | Purpose                                        |
//! |--------------------------|------------------------------------------------|
//! | `GET /health`            | Liveness + simulator version                   |
//! | `GET /scenarios`         | Built-in scenarios with cell counts            |
//! | `POST /run`              | One (bench × config × scale) cell              |
//! | `POST /sweep`            | A scenario (built-in name or inline JSON)      |
//! | `GET /jobs/<id>`         | Job status (`"wait": false` requests)          |
//! | `GET /jobs/<id>/result`  | Job result; `?wait_ms=N` long-polls            |
//! | `GET /cache/stats`       | On-disk result-cache inventory                 |
//! | `GET /metrics`           | Counters, queue depths, latency percentiles    |
//!
//! The moving parts: an incremental bounded [`http`] parser, a fixed
//! worker pool behind a bounded queue with 503 backpressure
//! ([`server`]), single-flight coalescing of identical concurrent jobs
//! (via `mtvp_engine::Coalescer`, keyed by the cache's content hash), a
//! monotonic [`jobs`] table for async polling, SIGTERM-triggered
//! graceful drain ([`signal`]), and a closed-loop [`loadgen`] used by
//! the load-hardening tests and CI.

#![deny(unsafe_code)] // `signal` carries the one audited exception
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod jobs;
pub mod loadgen;
pub mod server;
pub mod signal;

pub use http::{Parser, Request, Response, MAX_BODY_BYTES, MAX_HEADER_BYTES};
pub use jobs::{JobSnapshot, JobState, JobTable};
pub use loadgen::{http_request, LoadgenOptions, LoadgenReport};
pub use server::{DrainReport, ServeOptions, Server, ServerHandle};
