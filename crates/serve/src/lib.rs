//! # mtvp-serve
//!
//! A from-scratch multithreaded HTTP/1.1 JSON service exposing the
//! `mtvp-engine` experiment engine over the network — `std::net` and the
//! vendored serde shim only, no external dependencies.
//!
//! Endpoints:
//!
//! | Method & path            | Purpose                                        |
//! |--------------------------|------------------------------------------------|
//! | `GET /health`            | Liveness + simulator version                   |
//! | `GET /scenarios`         | Built-in scenarios with cell counts            |
//! | `POST /run`              | One (bench × config × scale) cell              |
//! | `POST /sweep`            | A scenario (built-in name or inline JSON)      |
//! | `GET /jobs/<id>`         | Job status (`"wait": false` requests)          |
//! | `GET /jobs/<id>/result`  | Job result; `?wait_ms=N` long-polls            |
//! | `GET /cache/stats`       | On-disk result-cache inventory                 |
//! | `GET /cache/cell/<hash>` | Raw cached cell for cluster cache peering      |
//! | `GET /metrics`           | Counters, queue depths, latency percentiles    |
//!
//! The moving parts: an incremental bounded [`http`] parser, a fixed
//! worker pool behind a bounded queue with 503 backpressure
//! ([`server`]), single-flight coalescing of identical concurrent jobs
//! (via `mtvp_engine::Coalescer`, keyed by the cache's content hash), a
//! monotonic [`jobs`] table for async polling, SIGTERM-triggered
//! graceful drain ([`signal`]), and a closed-/open-loop [`loadgen`]
//! (the open loop reports SLO compliance: achieved rate, latency
//! percentiles, error budget) used by the load-hardening tests and CI.
//! Workers started with `--peers` fetch warm cells from each other
//! (`GET /cache/cell/<hash>`) before simulating — the cache-peering
//! half of the `mtvp-cluster` fabric.

#![deny(unsafe_code)] // `signal` carries the one audited exception
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod jobs;
pub mod loadgen;
pub mod server;
pub mod signal;

pub use http::{Parser, Request, Response, MAX_BODY_BYTES, MAX_HEADER_BYTES};
pub use jobs::{JobSnapshot, JobState, JobTable};
pub use loadgen::{
    http_request, run_open_loop, LoadgenOptions, LoadgenReport, OpenLoopOptions, SloReport,
};
pub use server::{DrainReport, ServeOptions, Server, ServerHandle};
