//! Load generators (closed- and open-loop) and the tiny blocking HTTP
//! client they are built on.
//!
//! [`http_request`] is the one client primitive: open a connection, send
//! one request, read to EOF (the server always answers
//! `Connection: close`), return status + body. The closed-loop generator
//! ([`run`]) drives N client threads, each issuing sequential requests,
//! and aggregates statuses, transport errors (resets), latencies, and
//! per-client job-id sequences — everything the load test and the CI
//! smoke job assert on. The open-loop generator ([`run_open_loop`])
//! instead *offers* requests at a fixed target rate regardless of how
//! fast responses come back — the arrival model real traffic follows —
//! and reports against an SLO: achieved throughput, p50/p99 latency, and
//! the error budget consumed by 503s, 5xxs, and transport failures.

use mtvp_obs::Histogram;
use serde::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Send one HTTP request and collect the full response.
///
/// Returns `(status, body)`. The body is whatever follows the header
/// terminator, read to EOF.
///
/// # Errors
/// Returns a description of the transport or framing failure (connect
/// error, reset, timeout, unparsable status line).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout_ms: u64,
) -> Result<(u16, String), String> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    // The timeout covers connect as well as read/write: a worker that
    // accepts but never responds (or a blackholed address) must not stall
    // a client beyond its deadline.
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
    let mut stream =
        TcpStream::connect_timeout(&sock, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(b) = body {
        req.push_str("Content-Type: application/json\r\n");
        req.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    req.push_str("\r\n");
    if let Some(b) = body {
        req.push_str(b);
    }
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

/// Split a raw response into status code and body.
fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    Ok((status, body.to_string()))
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Sequential requests per client.
    pub requests_per_client: usize,
    /// Request path (default `/run`).
    pub path: String,
    /// JSON body; `None` sends a GET instead of a POST.
    pub body: Option<String>,
    /// Per-request client timeout (ms).
    pub timeout_ms: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:8707".to_string(),
            clients: 8,
            requests_per_client: 4,
            path: "/run".to_string(),
            body: None,
            timeout_ms: 120_000,
        }
    }
}

/// Aggregated outcome of one load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub sent: u64,
    /// Response count per status code, ascending by code.
    pub statuses: Vec<(u16, u64)>,
    /// Transport failures: connect errors, resets, timeouts, bad framing.
    pub resets: u64,
    /// `"job"` ids extracted from JSON responses, per client, in each
    /// client's completion order (the load test asserts these are
    /// strictly increasing per client).
    pub client_job_ids: Vec<Vec<u64>>,
    /// End-to-end request latency in microseconds.
    pub latency_us: Histogram,
}

impl LoadgenReport {
    /// Responses observed with `status`.
    pub fn status_count(&self, status: u16) -> u64 {
        self.statuses
            .iter()
            .find(|(s, _)| *s == status)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// The report as JSON (what `mtvp-loadgen` prints).
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("sent".to_string(), Value::U64(self.sent)),
            (
                "statuses".to_string(),
                Value::Map(
                    self.statuses
                        .iter()
                        .map(|(s, n)| (s.to_string(), Value::U64(*n)))
                        .collect(),
                ),
            ),
            ("resets".to_string(), Value::U64(self.resets)),
            (
                "jobs_seen".to_string(),
                Value::U64(self.client_job_ids.iter().map(|v| v.len() as u64).sum()),
            ),
            (
                "latency_us".to_string(),
                Value::Map(vec![
                    ("count".to_string(), Value::U64(self.latency_us.count)),
                    ("mean".to_string(), Value::F64(self.latency_us.mean())),
                    (
                        "p50".to_string(),
                        Value::U64(self.latency_us.percentile(50.0)),
                    ),
                    (
                        "p99".to_string(),
                        Value::U64(self.latency_us.percentile(99.0)),
                    ),
                    ("max".to_string(), Value::U64(self.latency_us.max)),
                ]),
            ),
        ])
    }
}

/// Drive `clients` closed-loop clients against the server and aggregate
/// the outcome. Each client issues its requests sequentially, so its
/// observed job ids must be strictly increasing if the server allocates
/// ids monotonically.
pub fn run(opts: &LoadgenOptions) -> LoadgenReport {
    let handles: Vec<_> = (0..opts.clients.max(1))
        .map(|_| {
            let opts = opts.clone();
            std::thread::spawn(move || {
                let mut statuses: Vec<(u16, u64)> = Vec::new();
                let mut resets = 0u64;
                let mut jobs = Vec::new();
                let mut latencies = Vec::with_capacity(opts.requests_per_client);
                let method = if opts.body.is_some() { "POST" } else { "GET" };
                for _ in 0..opts.requests_per_client {
                    let t0 = Instant::now();
                    match http_request(
                        &opts.addr,
                        method,
                        &opts.path,
                        opts.body.as_deref(),
                        opts.timeout_ms,
                    ) {
                        Ok((status, body)) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            match statuses.iter_mut().find(|(s, _)| *s == status) {
                                Some((_, n)) => *n += 1,
                                None => statuses.push((status, 1)),
                            }
                            if let Ok(v) = serde_json::from_str::<Value>(&body) {
                                if let Some(id) = v.get("job").and_then(Value::as_u64) {
                                    jobs.push(id);
                                }
                            }
                        }
                        Err(_) => resets += 1,
                    }
                }
                (statuses, resets, jobs, latencies)
            })
        })
        .collect();
    let mut report = LoadgenReport {
        sent: (opts.clients.max(1) * opts.requests_per_client) as u64,
        ..LoadgenReport::default()
    };
    for h in handles {
        let (statuses, resets, jobs, latencies) = h.join().expect("client thread");
        for (s, n) in statuses {
            match report.statuses.iter_mut().find(|(c, _)| *c == s) {
                Some((_, total)) => *total += n,
                None => report.statuses.push((s, n)),
            }
        }
        report.resets += resets;
        report.client_job_ids.push(jobs);
        for us in latencies {
            report.latency_us.observe(us);
        }
    }
    report.statuses.sort_unstable_by_key(|(s, _)| *s);
    report
}

/// Open-loop load configuration: offer requests at `rate` per second for
/// `duration_ms`, independent of response times.
#[derive(Clone, Debug)]
pub struct OpenLoopOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Target offered request rate (requests per second).
    pub rate: f64,
    /// How long to keep offering load (ms).
    pub duration_ms: u64,
    /// Request path (default `/run`).
    pub path: String,
    /// JSON body; `None` sends a GET instead of a POST.
    pub body: Option<String>,
    /// Per-request client timeout (ms), covering connect and read.
    pub timeout_ms: u64,
}

impl Default for OpenLoopOptions {
    fn default() -> Self {
        OpenLoopOptions {
            addr: "127.0.0.1:8707".to_string(),
            rate: 10.0,
            duration_ms: 1_000,
            path: "/run".to_string(),
            body: None,
            timeout_ms: 5_000,
        }
    }
}

/// SLO-oriented outcome of one open-loop run.
#[derive(Clone, Debug, Default)]
pub struct SloReport {
    /// The offered rate the run targeted (requests per second).
    pub target_rate: f64,
    /// Requests offered (scheduled and sent).
    pub offered: u64,
    /// Requests that completed with any HTTP status.
    pub completed: u64,
    /// Completed requests per second of wall-clock time.
    pub achieved_rps: f64,
    /// Response count per status code, ascending by code.
    pub statuses: Vec<(u16, u64)>,
    /// Transport failures: connect errors/timeouts, resets, bad framing.
    pub resets: u64,
    /// Requests that burned error budget: transport failures plus 5xx
    /// responses (503 overload, 504 deadline) — everything a caller
    /// experiences as "the service failed me".
    pub errors: u64,
    /// Fraction of offered requests that burned error budget, in
    /// `[0, 1]`.
    pub error_budget_used: f64,
    /// End-to-end request latency in microseconds (completed requests).
    pub latency_us: Histogram,
}

impl SloReport {
    /// Responses observed with `status`.
    pub fn status_count(&self, status: u16) -> u64 {
        self.statuses
            .iter()
            .find(|(s, _)| *s == status)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// The report as JSON (what `mtvp-loadgen --rate` prints).
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("mode".to_string(), Value::Str("open-loop".to_string())),
            ("target_rate".to_string(), Value::F64(self.target_rate)),
            ("offered".to_string(), Value::U64(self.offered)),
            ("completed".to_string(), Value::U64(self.completed)),
            ("achieved_rps".to_string(), Value::F64(self.achieved_rps)),
            (
                "statuses".to_string(),
                Value::Map(
                    self.statuses
                        .iter()
                        .map(|(s, n)| (s.to_string(), Value::U64(*n)))
                        .collect(),
                ),
            ),
            ("resets".to_string(), Value::U64(self.resets)),
            ("errors".to_string(), Value::U64(self.errors)),
            (
                "error_budget_used".to_string(),
                Value::F64(self.error_budget_used),
            ),
            (
                "latency_us".to_string(),
                Value::Map(vec![
                    ("count".to_string(), Value::U64(self.latency_us.count)),
                    ("mean".to_string(), Value::F64(self.latency_us.mean())),
                    (
                        "p50".to_string(),
                        Value::U64(self.latency_us.percentile(50.0)),
                    ),
                    (
                        "p99".to_string(),
                        Value::U64(self.latency_us.percentile(99.0)),
                    ),
                    ("max".to_string(), Value::U64(self.latency_us.max)),
                ]),
            ),
        ])
    }
}

/// Offer requests at `opts.rate` per second for `opts.duration_ms`,
/// one thread per in-flight request, and aggregate an [`SloReport`].
///
/// Unlike the closed loop, a slow server does not slow the arrival
/// process down — queues build, 503s and timeouts appear, and the error
/// budget records them. That makes the report an honest answer to "can
/// this fabric sustain rate R within SLO?".
pub fn run_open_loop(opts: &OpenLoopOptions) -> SloReport {
    let rate = opts.rate.max(0.001);
    let duration = Duration::from_millis(opts.duration_ms.max(1));
    let offered = (rate * duration.as_secs_f64()).ceil().max(1.0) as u64;
    let interval = Duration::from_secs_f64(1.0 / rate);
    let (tx, rx) = std::sync::mpsc::channel::<(Result<(u16, String), String>, u64)>();
    let t0 = Instant::now();
    let mut senders = Vec::with_capacity(offered as usize);
    for i in 0..offered {
        let due = t0 + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let tx = tx.clone();
        let o = opts.clone();
        senders.push(std::thread::spawn(move || {
            let method = if o.body.is_some() { "POST" } else { "GET" };
            let s0 = Instant::now();
            let outcome = http_request(&o.addr, method, &o.path, o.body.as_deref(), o.timeout_ms);
            let _ = tx.send((outcome, s0.elapsed().as_micros() as u64));
        }));
    }
    drop(tx);
    let mut report = SloReport {
        target_rate: rate,
        offered,
        ..SloReport::default()
    };
    for (outcome, us) in rx {
        match outcome {
            Ok((status, _)) => {
                report.completed += 1;
                report.latency_us.observe(us);
                match report.statuses.iter_mut().find(|(s, _)| *s == status) {
                    Some((_, n)) => *n += 1,
                    None => report.statuses.push((status, 1)),
                }
                if status >= 500 {
                    report.errors += 1;
                }
            }
            Err(_) => {
                report.resets += 1;
                report.errors += 1;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    for h in senders {
        let _ = h.join();
    }
    report.statuses.sort_unstable_by_key(|(s, _)| *s);
    report.achieved_rps = if elapsed > 0.0 {
        report.completed as f64 / elapsed
    } else {
        0.0
    };
    report.error_budget_used = report.errors as f64 / report.offered.max(1) as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses_and_rejects_garbage() {
        let (status, body) =
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        assert!(parse_response(b"totally not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn connect_honors_the_request_timeout() {
        // A blackholed (non-routable) address must fail within the
        // per-request deadline instead of hanging in connect().
        let t0 = Instant::now();
        let r = http_request("10.255.255.1:9", "GET", "/health", None, 200);
        assert!(r.is_err());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "connect did not respect the timeout: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn open_loop_reports_slo_against_a_live_server() {
        let server = crate::server::Server::bind(crate::server::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache: mtvp_engine::CacheMode::Off,
            request_timeout_ms: 30_000,
            read_timeout_ms: 2_000,
            peers: Vec::new(),
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let report = run_open_loop(&OpenLoopOptions {
            addr,
            rate: 50.0,
            duration_ms: 400,
            path: "/health".to_string(),
            body: None,
            timeout_ms: 5_000,
        });
        assert_eq!(report.offered, 20);
        assert_eq!(report.completed, 20);
        assert_eq!(report.status_count(200), 20);
        assert_eq!(report.errors, 0);
        assert_eq!(report.error_budget_used, 0.0);
        assert!(report.achieved_rps > 0.0);
        assert!(report.latency_us.percentile(99.0) >= report.latency_us.percentile(50.0));
        let v = report.to_value();
        assert_eq!(v.get("offered").and_then(Value::as_u64), Some(20));
        assert!(v.get("latency_us").and_then(|l| l.get("p99")).is_some());
        handle.shutdown();
        join.join().expect("join").expect("run");
    }

    #[test]
    fn report_aggregates_statuses() {
        let report = LoadgenReport {
            sent: 10,
            statuses: vec![(200, 7), (503, 3)],
            resets: 0,
            client_job_ids: vec![vec![1, 3], vec![2, 4]],
            latency_us: Histogram::new(),
        };
        assert_eq!(report.status_count(200), 7);
        assert_eq!(report.status_count(503), 3);
        assert_eq!(report.status_count(404), 0);
        let v = report.to_value();
        assert_eq!(v.get("sent").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("jobs_seen").and_then(Value::as_u64), Some(4));
    }
}
