//! Closed-loop load generator and the tiny blocking HTTP client it is
//! built on.
//!
//! [`http_request`] is the one client primitive: open a connection, send
//! one request, read to EOF (the server always answers
//! `Connection: close`), return status + body. The generator
//! ([`run`]) drives N client threads, each issuing sequential requests,
//! and aggregates statuses, transport errors (resets), latencies, and
//! per-client job-id sequences — everything the load test and the CI
//! smoke job assert on.

use mtvp_obs::Histogram;
use serde::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Send one HTTP request and collect the full response.
///
/// Returns `(status, body)`. The body is whatever follows the header
/// terminator, read to EOF.
///
/// # Errors
/// Returns a description of the transport or framing failure (connect
/// error, reset, timeout, unparsable status line).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout_ms: u64,
) -> Result<(u16, String), String> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(b) = body {
        req.push_str("Content-Type: application/json\r\n");
        req.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    req.push_str("\r\n");
    if let Some(b) = body {
        req.push_str(b);
    }
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

/// Split a raw response into status code and body.
fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    Ok((status, body.to_string()))
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Sequential requests per client.
    pub requests_per_client: usize,
    /// Request path (default `/run`).
    pub path: String,
    /// JSON body; `None` sends a GET instead of a POST.
    pub body: Option<String>,
    /// Per-request client timeout (ms).
    pub timeout_ms: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:8707".to_string(),
            clients: 8,
            requests_per_client: 4,
            path: "/run".to_string(),
            body: None,
            timeout_ms: 120_000,
        }
    }
}

/// Aggregated outcome of one load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub sent: u64,
    /// Response count per status code, ascending by code.
    pub statuses: Vec<(u16, u64)>,
    /// Transport failures: connect errors, resets, timeouts, bad framing.
    pub resets: u64,
    /// `"job"` ids extracted from JSON responses, per client, in each
    /// client's completion order (the load test asserts these are
    /// strictly increasing per client).
    pub client_job_ids: Vec<Vec<u64>>,
    /// End-to-end request latency in microseconds.
    pub latency_us: Histogram,
}

impl LoadgenReport {
    /// Responses observed with `status`.
    pub fn status_count(&self, status: u16) -> u64 {
        self.statuses
            .iter()
            .find(|(s, _)| *s == status)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// The report as JSON (what `mtvp-loadgen` prints).
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("sent".to_string(), Value::U64(self.sent)),
            (
                "statuses".to_string(),
                Value::Map(
                    self.statuses
                        .iter()
                        .map(|(s, n)| (s.to_string(), Value::U64(*n)))
                        .collect(),
                ),
            ),
            ("resets".to_string(), Value::U64(self.resets)),
            (
                "jobs_seen".to_string(),
                Value::U64(self.client_job_ids.iter().map(|v| v.len() as u64).sum()),
            ),
            (
                "latency_us".to_string(),
                Value::Map(vec![
                    ("count".to_string(), Value::U64(self.latency_us.count)),
                    ("mean".to_string(), Value::F64(self.latency_us.mean())),
                    (
                        "p50".to_string(),
                        Value::U64(self.latency_us.percentile(50.0)),
                    ),
                    (
                        "p99".to_string(),
                        Value::U64(self.latency_us.percentile(99.0)),
                    ),
                    ("max".to_string(), Value::U64(self.latency_us.max)),
                ]),
            ),
        ])
    }
}

/// Drive `clients` closed-loop clients against the server and aggregate
/// the outcome. Each client issues its requests sequentially, so its
/// observed job ids must be strictly increasing if the server allocates
/// ids monotonically.
pub fn run(opts: &LoadgenOptions) -> LoadgenReport {
    let handles: Vec<_> = (0..opts.clients.max(1))
        .map(|_| {
            let opts = opts.clone();
            std::thread::spawn(move || {
                let mut statuses: Vec<(u16, u64)> = Vec::new();
                let mut resets = 0u64;
                let mut jobs = Vec::new();
                let mut latencies = Vec::with_capacity(opts.requests_per_client);
                let method = if opts.body.is_some() { "POST" } else { "GET" };
                for _ in 0..opts.requests_per_client {
                    let t0 = Instant::now();
                    match http_request(
                        &opts.addr,
                        method,
                        &opts.path,
                        opts.body.as_deref(),
                        opts.timeout_ms,
                    ) {
                        Ok((status, body)) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            match statuses.iter_mut().find(|(s, _)| *s == status) {
                                Some((_, n)) => *n += 1,
                                None => statuses.push((status, 1)),
                            }
                            if let Ok(v) = serde_json::from_str::<Value>(&body) {
                                if let Some(id) = v.get("job").and_then(Value::as_u64) {
                                    jobs.push(id);
                                }
                            }
                        }
                        Err(_) => resets += 1,
                    }
                }
                (statuses, resets, jobs, latencies)
            })
        })
        .collect();
    let mut report = LoadgenReport {
        sent: (opts.clients.max(1) * opts.requests_per_client) as u64,
        ..LoadgenReport::default()
    };
    for h in handles {
        let (statuses, resets, jobs, latencies) = h.join().expect("client thread");
        for (s, n) in statuses {
            match report.statuses.iter_mut().find(|(c, _)| *c == s) {
                Some((_, total)) => *total += n,
                None => report.statuses.push((s, n)),
            }
        }
        report.resets += resets;
        report.client_job_ids.push(jobs);
        for us in latencies {
            report.latency_us.observe(us);
        }
    }
    report.statuses.sort_unstable_by_key(|(s, _)| *s);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses_and_rejects_garbage() {
        let (status, body) =
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        assert!(parse_response(b"totally not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn report_aggregates_statuses() {
        let report = LoadgenReport {
            sent: 10,
            statuses: vec![(200, 7), (503, 3)],
            resets: 0,
            client_job_ids: vec![vec![1, 3], vec![2, 4]],
            latency_us: Histogram::new(),
        };
        assert_eq!(report.status_count(200), 7);
        assert_eq!(report.status_count(503), 3);
        assert_eq!(report.status_count(404), 0);
        let v = report.to_value();
        assert_eq!(v.get("sent").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("jobs_seen").and_then(Value::as_u64), Some(4));
    }
}
