//! The multithreaded experiment server.
//!
//! Architecture, front to back:
//!
//! - **Accept loop** (the thread that called [`Server::run`]): a
//!   non-blocking `TcpListener` polled every couple of milliseconds so
//!   SIGTERM/SIGINT (see [`crate::signal`]) and [`ServerHandle::shutdown`]
//!   are observed promptly. Each accepted connection is pushed into the
//!   bounded work queue.
//! - **Bounded work queue**: connections and asynchronous jobs share one
//!   `VecDeque` capped at `queue_depth`. When full, the connection is
//!   handed to a detached *reject* thread that reads the request before
//!   answering `503` + `Retry-After` — draining first, because closing a
//!   socket with unread data sends a TCP RST and the load harness asserts
//!   zero resets.
//! - **Worker pool**: `workers` fixed threads pop work, parse one request
//!   per connection ([`crate::http`]), route it, and respond with
//!   `Connection: close`.
//! - **Coalescing**: identical concurrent `/run`s share one engine
//!   execution through a [`Coalescer`] keyed by the same content hash
//!   that addresses the disk cache; `/sweep`s coalesce on the rendered
//!   scenario. Joiners respect the request deadline (504 on expiry)
//!   while the leader always runs to completion and populates the cache.
//! - **Graceful drain**: once shutdown is observed the listener stops
//!   accepting, workers finish everything already queued, and
//!   [`Server::run`] returns a [`DrainReport`].

use crate::api;
use crate::http::{Parser, Request, Response};
use crate::jobs::{JobState, JobTable};
use crate::signal;
use mtvp_engine::{
    builtin_scenarios, cell_descriptor, key::scale_tag, key_of, suite, Cache, CacheMode, CellEntry,
    Coalesced, Coalescer, Engine, EngineOptions, JobKey, Registry, Scale, Scenario, SimConfig,
    SIM_VERSION,
};
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration, mirroring the `mtvp-sim serve` CLI flags.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Fixed worker-thread count.
    pub workers: usize,
    /// Bound on queued work (connections + async jobs) before 503s.
    pub queue_depth: usize,
    /// Result persistence, shared with the CLI experiment engine.
    pub cache: CacheMode,
    /// Default per-request deadline (ms); bodies may override.
    pub request_timeout_ms: u64,
    /// Socket read timeout while parsing a request (ms).
    pub read_timeout_ms: u64,
    /// Cluster peers (`host:port`) to ask for warm cells before
    /// simulating (`--peers a,b,c`; empty disables peering).
    pub peers: Vec<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8707".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_depth: 32,
            cache: CacheMode::Disk(mtvp_engine::Cache::default_dir()),
            request_timeout_ms: 120_000,
            read_timeout_ms: 10_000,
            peers: Vec::new(),
        }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`]
/// after a graceful drain.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Requests fully parsed and routed.
    pub requests: u64,
    /// Connections answered 503 because the queue was full.
    pub rejected: u64,
    /// Jobs registered in the job table.
    pub jobs: u64,
    /// `/run` or `/sweep` calls that shared another caller's execution.
    pub coalesce_hits: u64,
}

/// Work items flowing through the bounded queue.
enum Work {
    /// An accepted connection awaiting parse + route.
    Conn {
        stream: TcpStream,
        accepted: Instant,
    },
    /// An asynchronous `/run` (`"wait": false`).
    RunJob {
        id: u64,
        bench: String,
        config: SimConfig,
        scale: Scale,
    },
    /// An asynchronous `/sweep`.
    SweepJob {
        id: u64,
        scenario: Scenario,
        scale: Option<Scale>,
    },
}

/// State shared by the accept loop, workers and reject threads.
struct Shared {
    opts: ServeOptions,
    engine: Engine,
    cells: Coalescer<(CellEntry, bool)>,
    sweeps: Coalescer<String>,
    jobs: JobTable,
    // Behind an `Arc` so the engine's peer-fetch closure (created before
    // `Shared` exists) can count peer hits/misses.
    metrics: Arc<Mutex<Registry>>,
    queue: Mutex<VecDeque<Work>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    queue_highwater: AtomicU64,
    /// Work items currently being processed by worker threads.
    active: AtomicU64,
    started: Instant,
}

impl Shared {
    fn bump(&self, name: &str) {
        self.metrics.lock().expect("metrics").bump(name);
    }

    fn observe(&self, name: &str, v: u64) {
        self.metrics.lock().expect("metrics").observe(name, v);
    }

    fn count_response(&self, status: u16) {
        let mut m = self.metrics.lock().expect("metrics");
        m.bump("serve.responses");
        m.bump(&format!("serve.responses.{status}"));
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::triggered()
    }

    /// Enqueue `w` unless the queue is at capacity; hands it back
    /// (`Some`) on overflow so the caller can reject gracefully.
    fn try_enqueue(&self, w: Work) -> Option<Work> {
        let mut q = self.queue.lock().expect("queue");
        if q.len() >= self.opts.queue_depth {
            return Some(w);
        }
        q.push_back(w);
        self.queue_highwater
            .fetch_max(q.len() as u64, Ordering::Relaxed);
        drop(q);
        self.queue_cv.notify_one();
        None
    }

    /// Pop the next work item, blocking until one arrives. Returns `None`
    /// only when shutdown has been requested *and* the queue is empty —
    /// i.e. workers drain everything that was already accepted.
    fn dequeue(&self) -> Option<Work> {
        let mut q = self.queue.lock().expect("queue");
        loop {
            if let Some(w) = q.pop_front() {
                return Some(w);
            }
            if self.shutting_down() {
                return None;
            }
            let (guard, _) = self
                .queue_cv
                .wait_timeout(q, Duration::from_millis(50))
                .expect("queue");
            q = guard;
        }
    }
}

/// Handle for stopping a running server from another thread (tests and
/// the ctrl-c path use the signal latch instead).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Request a graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `opts.addr` and prepare the shared state.
    ///
    /// # Errors
    /// Propagates the bind error (address in use, permission, …).
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(Mutex::new(Registry::new()));
        // One engine worker per simulation: parallelism comes from the
        // server's worker pool, not from fanning each sweep across every
        // core (which would oversubscribe under concurrent requests).
        let mut engine = Engine::new(EngineOptions {
            cache: opts.cache.clone(),
            jobs: Some(1),
            shard: None,
            progress: false,
        });
        if !opts.peers.is_empty() {
            engine = engine.with_peer_fetch(peer_fetch(opts.peers.clone(), Arc::clone(&metrics)));
        }
        let shared = Arc::new(Shared {
            opts,
            engine,
            cells: Coalescer::new(),
            sweeps: Coalescer::new(),
            jobs: JobTable::new(),
            metrics,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_highwater: AtomicU64::new(0),
            active: AtomicU64::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    /// Propagates the OS error, which cannot normally occur on a bound
    /// listener.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested (signal or handle), then drain
    /// the queue and return the lifetime accounting.
    ///
    /// # Errors
    /// Propagates only fatal listener errors; per-connection errors are
    /// counted and survived.
    pub fn run(self) -> std::io::Result<DrainReport> {
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.opts.workers);
        for i in 0..shared.opts.workers.max(1) {
            let s = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mtvp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker"),
            );
        }
        while !shared.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    shared.bump("serve.connections");
                    let work = Work::Conn {
                        stream,
                        accepted: Instant::now(),
                    };
                    if let Some(Work::Conn { stream, .. }) = shared.try_enqueue(work) {
                        reject_busy(&shared, stream);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    // Transient accept failure (e.g. aborted handshake).
                    shared.bump("serve.accept_errors");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        drop(self.listener);
        shared.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        let m = shared.metrics.lock().expect("metrics");
        Ok(DrainReport {
            requests: m.counter("serve.requests"),
            rejected: m.counter("serve.queue.rejected"),
            jobs: shared.jobs.created(),
            coalesce_hits: m.counter("serve.coalesce.hits"),
        })
    }
}

/// Build the engine hook that asks each cluster peer for a warm cell
/// (`GET /cache/cell/<hash>`) before simulating. The first peer to
/// answer 200 with parseable JSON wins; the engine then verifies the
/// entry's descriptor, so a stale or lying peer costs one round trip,
/// never a wrong result.
fn peer_fetch(peers: Vec<String>, metrics: Arc<Mutex<Registry>>) -> mtvp_engine::PeerFetch {
    Arc::new(move |key: &JobKey, _descriptor: &str| {
        let path = format!("/cache/cell/{}", key.hex());
        for peer in &peers {
            match crate::loadgen::http_request(peer, "GET", &path, None, 5_000) {
                Ok((200, body)) => {
                    if let Ok(entry) = serde_json::from_str::<CellEntry>(&body) {
                        metrics.lock().expect("metrics").bump("serve.peer.hits");
                        return Some(entry);
                    }
                    metrics.lock().expect("metrics").bump("serve.peer.errors");
                }
                Ok(_) => metrics.lock().expect("metrics").bump("serve.peer.misses"),
                Err(_) => metrics.lock().expect("metrics").bump("serve.peer.errors"),
            }
        }
        None
    })
}

/// Backpressure path: drain the request off the socket (bounded by the
/// parser's size caps and a short timeout), then answer 503 with a
/// `Retry-After` hint. Runs on a detached thread so a slow writer can
/// never stall the accept loop.
fn reject_busy(shared: &Arc<Shared>, mut stream: TcpStream) {
    let s = Arc::clone(shared);
    std::thread::spawn(move || {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(2_000)));
        let mut parser = Parser::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => match parser.feed(&buf[..n]) {
                    Ok(Some(_)) | Err(_) => break,
                    Ok(None) => {}
                },
                Err(_) => break,
            }
        }
        s.bump("serve.queue.rejected");
        s.count_response(503);
        let resp = Response::error(503, "job queue is full, retry shortly")
            .with_header("Retry-After", "1");
        let _ = resp.write_to(&mut stream);
        let _ = stream.shutdown(Shutdown::Both);
    });
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(work) = shared.dequeue() {
        shared.active.fetch_add(1, Ordering::SeqCst);
        match work {
            Work::Conn { stream, accepted } => handle_conn(shared, stream, accepted),
            Work::RunJob {
                id,
                bench,
                config,
                scale,
            } => {
                shared.jobs.start(id);
                let t0 = Instant::now();
                let outcome = match execute_run(shared, &bench, &config, scale, None) {
                    RunOutcome::Done {
                        entry,
                        cached,
                        coalesced,
                    } => Ok(api::run_result_json(
                        id,
                        &entry,
                        cached,
                        coalesced,
                        t0.elapsed().as_micros() as u64,
                    )
                    .to_string()),
                    RunOutcome::TimedOut => Err("deadline exceeded".to_string()),
                    RunOutcome::Failed(e) => Err(e),
                };
                shared.jobs.finish(id, outcome);
                shared.bump("serve.jobs.completed");
            }
            Work::SweepJob {
                id,
                scenario,
                scale,
            } => {
                shared.jobs.start(id);
                let outcome = match execute_sweep(shared, &scenario, scale, None) {
                    SweepOutcome::Done { report, coalesced } => {
                        Ok(wrap_sweep(id, coalesced, &report).to_string())
                    }
                    SweepOutcome::TimedOut => Err("deadline exceeded".to_string()),
                    SweepOutcome::Failed(e) => Err(e),
                };
                shared.jobs.finish(id, outcome);
                shared.bump("serve.jobs.completed");
            }
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Parse one request off the connection, route it, respond, close.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream, accepted: Instant) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.opts.read_timeout_ms)));
    let resp = match read_request(&mut stream) {
        Ok(Some(req)) => {
            shared.bump("serve.requests");
            route(shared, &req)
        }
        Ok(None) => {
            // Closed without sending anything (port probe); no response.
            shared.bump("serve.conn.empty");
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Err(resp) => resp,
    };
    shared.count_response(resp.status);
    shared.observe("serve.latency_us", accepted.elapsed().as_micros() as u64);
    let _ = resp.write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Read until the parser yields a request. `Ok(None)` means the peer
/// closed before sending any bytes; `Err` carries the error response.
fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, Response> {
    let mut parser = Parser::new();
    let mut buf = [0u8; 8192];
    let mut got_any = false;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                return if got_any {
                    Err(Response::error(400, "connection closed mid-request"))
                } else {
                    Ok(None)
                };
            }
            Ok(n) => {
                got_any = true;
                match parser.feed(&buf[..n]) {
                    Ok(Some(req)) => return Ok(Some(req)),
                    Ok(None) => {}
                    Err(e) => return Err(Response::error(e.status(), &e.to_string())),
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(Response::error(408, "timed out reading the request"));
            }
            Err(_) => return Err(Response::error(400, "read error")),
        }
    }
}

fn json_response(status: u16, v: &Value) -> Response {
    Response::json(status, v.to_string() + "\n")
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let (path, _) = req.path_and_query();
    match (req.method.as_str(), path) {
        ("GET", "/health") => health(shared),
        ("GET", "/scenarios") => scenarios(),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/cache/stats") => cache_stats(shared),
        ("POST", "/run") => post_run(shared, req),
        ("POST", "/sweep") => post_sweep(shared, req),
        ("GET", p) if p.starts_with("/jobs/") => jobs_get(shared, req, &p["/jobs/".len()..]),
        ("GET", p) if p.starts_with("/cache/cell/") => {
            cache_cell(shared, &p["/cache/cell/".len()..])
        }
        (_, "/health" | "/scenarios" | "/metrics" | "/cache/stats" | "/run" | "/sweep") => {
            Response::error(405, "method not allowed")
        }
        (_, p) if p.starts_with("/jobs/") || p.starts_with("/cache/cell/") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "not found"),
    }
}

fn health(shared: &Arc<Shared>) -> Response {
    json_response(
        200,
        &Value::Map(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            ("version".to_string(), Value::Str(SIM_VERSION.to_string())),
            (
                "workers".to_string(),
                Value::U64(shared.opts.workers as u64),
            ),
            (
                "queue_depth".to_string(),
                Value::U64(shared.opts.queue_depth as u64),
            ),
            (
                "uptime_ms".to_string(),
                Value::U64(shared.started.elapsed().as_millis() as u64),
            ),
            (
                "inflight".to_string(),
                Value::U64(
                    shared.active.load(Ordering::SeqCst)
                        + shared.queue.lock().expect("queue").len() as u64,
                ),
            ),
        ]),
    )
}

/// `GET /cache/cell/<hash>`: the cache-peering endpoint. Serves the raw
/// stored cell JSON for a 32-hex-digit content hash, 404 on a miss (or
/// when this worker runs cache-off). Peers re-verify the entry's
/// descriptor on their side, so this endpoint never needs to.
fn cache_cell(shared: &Arc<Shared>, hash: &str) -> Response {
    let Some(key) = JobKey::from_hex(hash) else {
        return Response::error(400, "cell hash must be 32 lowercase hex digits");
    };
    let CacheMode::Disk(dir) = &shared.opts.cache else {
        return Response::error(404, "cache disabled on this worker");
    };
    match Cache::new(dir.clone()).read_cell_text(&key) {
        Some(text) => {
            shared.bump("serve.peer.served");
            Response::json(200, text)
        }
        None => Response::error(404, "no such cell"),
    }
}

fn scenarios() -> Response {
    let list = builtin_scenarios()
        .into_iter()
        .map(|s| {
            let benches = suite().iter().filter(|w| s.keeps(w)).count() as u64;
            let cells = s.configs().map(|c| c.len() as u64).unwrap_or(0) * benches;
            Value::Map(vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("title".to_string(), Value::Str(s.title.clone())),
                (
                    "scale".to_string(),
                    s.scale
                        .map(|x| Value::Str(scale_tag(x).to_string()))
                        .unwrap_or(Value::Null),
                ),
                ("benches".to_string(), Value::U64(benches)),
                ("cells".to_string(), Value::U64(cells)),
            ])
        })
        .collect();
    json_response(
        200,
        &Value::Map(vec![("scenarios".to_string(), Value::Seq(list))]),
    )
}

fn metrics(shared: &Arc<Shared>) -> Response {
    let registry = shared.metrics.lock().expect("metrics").clone();
    let depth = shared.queue.lock().expect("queue").len() as u64;
    let lat = registry.histogram("serve.latency_us");
    let latency = Value::Map(vec![
        (
            "count".to_string(),
            Value::U64(lat.map(|h| h.count).unwrap_or(0)),
        ),
        (
            "mean".to_string(),
            Value::F64(lat.map(|h| h.mean()).unwrap_or(0.0)),
        ),
        (
            "p50".to_string(),
            Value::U64(lat.map(|h| h.percentile(50.0)).unwrap_or(0)),
        ),
        (
            "p99".to_string(),
            Value::U64(lat.map(|h| h.percentile(99.0)).unwrap_or(0)),
        ),
        (
            "max".to_string(),
            Value::U64(lat.map(|h| h.max).unwrap_or(0)),
        ),
    ]);
    json_response(
        200,
        &Value::Map(vec![
            (
                "uptime_ms".to_string(),
                Value::U64(shared.started.elapsed().as_millis() as u64),
            ),
            (
                "queue".to_string(),
                Value::Map(vec![
                    ("depth".to_string(), Value::U64(depth)),
                    (
                        "capacity".to_string(),
                        Value::U64(shared.opts.queue_depth as u64),
                    ),
                    (
                        "highwater".to_string(),
                        Value::U64(shared.queue_highwater.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "jobs".to_string(),
                Value::Map(vec![(
                    "created".to_string(),
                    Value::U64(shared.jobs.created()),
                )]),
            ),
            ("latency_us".to_string(), latency),
            ("registry".to_string(), registry.to_value()),
        ]),
    )
}

fn cache_stats(shared: &Arc<Shared>) -> Response {
    let CacheMode::Disk(dir) = &shared.opts.cache else {
        return json_response(
            200,
            &Value::Map(vec![("enabled".to_string(), Value::Bool(false))]),
        );
    };
    let (mut cells, mut traces, mut lints, mut bytes) = (0u64, 0u64, 0u64, 0u64);
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if let Ok(md) = e.metadata() {
                bytes += md.len();
            }
            if name.ends_with(".lint.json") {
                lints += 1;
            } else if name.ends_with(".json") {
                cells += 1;
            } else if name.ends_with(".trace") {
                traces += 1;
            }
        }
    }
    json_response(
        200,
        &Value::Map(vec![
            ("enabled".to_string(), Value::Bool(true)),
            ("dir".to_string(), Value::Str(dir.display().to_string())),
            ("cells".to_string(), Value::U64(cells)),
            ("traces".to_string(), Value::U64(traces)),
            ("lints".to_string(), Value::U64(lints)),
            ("bytes".to_string(), Value::U64(bytes)),
        ]),
    )
}

/// How a synchronous or asynchronous `/run` resolved.
enum RunOutcome {
    Done {
        entry: Box<CellEntry>,
        cached: bool,
        coalesced: bool,
    },
    TimedOut,
    Failed(String),
}

/// Execute one cell with single-flight coalescing. The leader runs to
/// completion regardless of the deadline (its result lands in the cache
/// either way); only joiners time out.
fn execute_run(
    shared: &Arc<Shared>,
    bench: &str,
    cfg: &SimConfig,
    scale: Scale,
    deadline: Option<Instant>,
) -> RunOutcome {
    let key = key_of(&cell_descriptor(bench, cfg, scale)).to_string();
    match shared
        .cells
        .run(&key, deadline, || shared.engine.run_cell(bench, cfg, scale))
    {
        Coalesced::Led(Ok((entry, cached))) => RunOutcome::Done {
            entry: Box::new(entry),
            cached,
            coalesced: false,
        },
        Coalesced::Led(Err(e)) => RunOutcome::Failed(e),
        Coalesced::Joined(Ok((entry, cached))) => {
            shared.bump("serve.coalesce.hits");
            RunOutcome::Done {
                entry: Box::new(entry),
                cached,
                coalesced: true,
            }
        }
        Coalesced::Joined(Err(e)) => {
            shared.bump("serve.coalesce.hits");
            RunOutcome::Failed(e)
        }
        Coalesced::TimedOut => RunOutcome::TimedOut,
    }
}

enum SweepOutcome {
    Done { report: String, coalesced: bool },
    TimedOut,
    Failed(String),
}

fn execute_sweep(
    shared: &Arc<Shared>,
    scenario: &Scenario,
    scale: Option<Scale>,
    deadline: Option<Instant>,
) -> SweepOutcome {
    let resolved = scenario.scale_or(scale);
    let descriptor = format!(
        "sweep|{}|{}|{}",
        SIM_VERSION,
        scale_tag(resolved),
        scenario.to_value()
    );
    let key = key_of(&descriptor).to_string();
    let outcome = shared.sweeps.run(&key, deadline, || {
        shared
            .engine
            .run_scenario(scenario, scale)
            .map(|report| api::sweep_report_json(scenario, &report).to_string())
            .map_err(|e| e.0)
    });
    match outcome {
        Coalesced::Led(Ok(report)) => SweepOutcome::Done {
            report,
            coalesced: false,
        },
        Coalesced::Led(Err(e)) => SweepOutcome::Failed(e),
        Coalesced::Joined(Ok(report)) => {
            shared.bump("serve.coalesce.hits");
            SweepOutcome::Done {
                report,
                coalesced: true,
            }
        }
        Coalesced::Joined(Err(e)) => {
            shared.bump("serve.coalesce.hits");
            SweepOutcome::Failed(e)
        }
        Coalesced::TimedOut => SweepOutcome::TimedOut,
    }
}

/// Wrap a (possibly shared) sweep report with the per-request fields.
fn wrap_sweep(job: u64, coalesced: bool, report: &str) -> Value {
    let parsed = serde_json::from_str(report).unwrap_or(Value::Null);
    Value::Map(vec![
        ("job".to_string(), Value::U64(job)),
        ("coalesced".to_string(), Value::Bool(coalesced)),
        ("report".to_string(), parsed),
    ])
}

fn parse_body(req: &Request) -> Result<Value, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Value::Map(Vec::new()));
    }
    serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad JSON body: {e}")))
}

fn post_run(shared: &Arc<Shared>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let r = match api::parse_run_request(&body) {
        Ok(r) => r,
        Err(e) => return Response::error(422, &e),
    };
    let detail = format!("{}@{}", r.bench, scale_tag(r.scale));
    let id = shared.jobs.create("run", &detail);
    if !r.wait {
        let work = Work::RunJob {
            id,
            bench: r.bench,
            config: r.config,
            scale: r.scale,
        };
        return match shared.try_enqueue(work) {
            None => json_response(202, &api::accepted_json(id)),
            Some(_) => {
                shared.jobs.remove(id);
                shared.bump("serve.queue.rejected");
                Response::error(503, "job queue is full, retry shortly")
                    .with_header("Retry-After", "1")
            }
        };
    }
    shared.jobs.start(id);
    let timeout = Duration::from_millis(r.timeout_ms.unwrap_or(shared.opts.request_timeout_ms));
    let t0 = Instant::now();
    match execute_run(shared, &r.bench, &r.config, r.scale, Some(t0 + timeout)) {
        RunOutcome::Done {
            entry,
            cached,
            coalesced,
        } => {
            let json = api::run_result_json(
                id,
                &entry,
                cached,
                coalesced,
                t0.elapsed().as_micros() as u64,
            );
            shared.jobs.finish(id, Ok(json.to_string()));
            json_response(200, &json)
        }
        RunOutcome::TimedOut => {
            shared.jobs.finish(id, Err("deadline exceeded".to_string()));
            Response::error(504, "deadline exceeded waiting for the simulation")
        }
        RunOutcome::Failed(e) => {
            shared.jobs.finish(id, Err(e.clone()));
            Response::error(422, &e)
        }
    }
}

fn post_sweep(shared: &Arc<Shared>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let r = match api::parse_sweep_request(&body) {
        Ok(r) => r,
        Err(e) => return Response::error(422, &e),
    };
    let id = shared.jobs.create("sweep", &r.scenario.name);
    if !r.wait {
        let work = Work::SweepJob {
            id,
            scenario: r.scenario,
            scale: r.scale,
        };
        return match shared.try_enqueue(work) {
            None => json_response(202, &api::accepted_json(id)),
            Some(_) => {
                shared.jobs.remove(id);
                shared.bump("serve.queue.rejected");
                Response::error(503, "job queue is full, retry shortly")
                    .with_header("Retry-After", "1")
            }
        };
    }
    shared.jobs.start(id);
    let timeout = Duration::from_millis(r.timeout_ms.unwrap_or(shared.opts.request_timeout_ms));
    match execute_sweep(shared, &r.scenario, r.scale, Some(Instant::now() + timeout)) {
        SweepOutcome::Done { report, coalesced } => {
            let json = wrap_sweep(id, coalesced, &report);
            shared.jobs.finish(id, Ok(json.to_string()));
            json_response(200, &json)
        }
        SweepOutcome::TimedOut => {
            shared.jobs.finish(id, Err("deadline exceeded".to_string()));
            Response::error(504, "deadline exceeded waiting for the sweep")
        }
        SweepOutcome::Failed(e) => {
            shared.jobs.finish(id, Err(e.clone()));
            Response::error(422, &e)
        }
    }
}

fn job_status_json(snap: &crate::jobs::JobSnapshot) -> Value {
    let mut fields = vec![
        ("job".to_string(), Value::U64(snap.id)),
        ("kind".to_string(), Value::Str(snap.kind.clone())),
        ("detail".to_string(), Value::Str(snap.detail.clone())),
        (
            "state".to_string(),
            Value::Str(snap.state.as_str().to_string()),
        ),
    ];
    if let Some(e) = &snap.error {
        fields.push(("error".to_string(), Value::Str(e.clone())));
    }
    Value::Map(fields)
}

/// `GET /jobs/<id>` and `GET /jobs/<id>/result[?wait_ms=N]`.
fn jobs_get(shared: &Arc<Shared>, req: &Request, rest: &str) -> Response {
    let (id_str, tail) = match rest.split_once('/') {
        Some((a, b)) => (a, Some(b)),
        None => (rest, None),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        return Response::error(404, "no such job");
    };
    match tail {
        None => match shared.jobs.snapshot(id) {
            Some(snap) => json_response(200, &job_status_json(&snap)),
            None => Response::error(404, "no such job"),
        },
        Some("result") => {
            let wait_ms = match req.query_param("wait_ms") {
                None => None,
                Some(raw) => match raw.parse::<u64>() {
                    Ok(ms) => Some(ms),
                    Err(_) => {
                        return Response::error(400, "wait_ms must be a non-negative integer")
                    }
                },
            };
            let snap = match wait_ms {
                Some(ms) => {
                    match shared
                        .jobs
                        .wait_terminal(id, Instant::now() + Duration::from_millis(ms))
                    {
                        Ok(Some(snap)) => snap,
                        Ok(None) => return Response::error(404, "no such job"),
                        Err(_) => {
                            return Response::error(504, "deadline exceeded waiting for the job")
                        }
                    }
                }
                None => match shared.jobs.snapshot(id) {
                    Some(snap) => snap,
                    None => return Response::error(404, "no such job"),
                },
            };
            match snap.state {
                JobState::Done => {
                    let result = snap.result.as_deref().unwrap_or("null");
                    Response::json(200, result.to_string() + "\n")
                }
                JobState::Failed => {
                    Response::error(422, snap.error.as_deref().unwrap_or("job failed"))
                }
                JobState::Queued | JobState::Running => json_response(202, &job_status_json(&snap)),
            }
        }
        Some(_) => Response::error(404, "not found"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(
        workers: usize,
        queue_depth: usize,
    ) -> (
        SocketAddr,
        ServerHandle,
        std::thread::JoinHandle<DrainReport>,
    ) {
        let server = Server::bind(ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_depth,
            cache: CacheMode::Off,
            request_timeout_ms: 60_000,
            read_timeout_ms: 2_000,
            peers: Vec::new(),
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("run"));
        (addr, handle, join)
    }

    #[test]
    fn serves_health_and_drains_on_shutdown() {
        let (addr, handle, join) = test_server(2, 8);
        let (status, body) =
            crate::loadgen::http_request(&addr.to_string(), "GET", "/health", None, 5_000)
                .expect("health");
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).expect("json");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("version").and_then(Value::as_str), Some(SIM_VERSION));
        assert!(v.get("uptime_ms").and_then(Value::as_u64).is_some());
        // The health request itself is being processed, so it counts.
        assert_eq!(v.get("inflight").and_then(Value::as_u64), Some(1));
        handle.shutdown();
        let report = join.join().expect("join");
        assert_eq!(report.requests, 1);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn routes_errors_without_panicking() {
        let (addr, handle, join) = test_server(1, 8);
        let addr = addr.to_string();
        for (method, path, body, want) in [
            ("GET", "/nope", None, 404),
            ("POST", "/health", None, 405),
            ("GET", "/jobs/999", None, 404),
            ("GET", "/jobs/abc", None, 404),
            ("POST", "/run", Some("{"), 400),
            (
                "POST",
                "/run",
                Some(r#"{"bench": "nope", "scale": "tiny"}"#),
                422,
            ),
            ("POST", "/sweep", Some(r#"{"scenario": "warp9"}"#), 422),
        ] {
            let (status, _) = crate::loadgen::http_request(&addr, method, path, body, 5_000)
                .unwrap_or_else(|e| panic!("{method} {path}: {e}"));
            assert_eq!(status, want, "{method} {path}");
        }
        handle.shutdown();
        join.join().expect("join");
    }

    #[test]
    fn runs_a_cell_and_reports_metrics() {
        let (addr, handle, join) = test_server(2, 8);
        let addr = addr.to_string();
        let body = r#"{"bench": "mcf", "scale": "tiny", "config": {"mode": "baseline"}}"#;
        let (status, text) =
            crate::loadgen::http_request(&addr, "POST", "/run", Some(body), 60_000).expect("run");
        assert_eq!(status, 200, "{text}");
        let v: Value = serde_json::from_str(&text).expect("json");
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("mcf"));
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(false));
        assert!(v.get("stats").is_some());
        let job = v.get("job").and_then(Value::as_u64).expect("job id");

        // The job is observable after the fact, and its stored result is
        // exactly what the synchronous response carried.
        let (status, text) =
            crate::loadgen::http_request(&addr, "GET", &format!("/jobs/{job}/result"), None, 5_000)
                .expect("result");
        assert_eq!(status, 200);
        let stored: Value = serde_json::from_str(&text).expect("json");
        assert_eq!(stored, v);

        let (status, text) =
            crate::loadgen::http_request(&addr, "GET", "/metrics", None, 5_000).expect("metrics");
        assert_eq!(status, 200);
        let m: Value = serde_json::from_str(&text).expect("json");
        let lat = m.get("latency_us").expect("latency");
        assert!(lat.get("count").and_then(Value::as_u64).unwrap() >= 2);
        assert!(
            lat.get("p99").and_then(Value::as_u64).unwrap()
                >= lat.get("p50").and_then(Value::as_u64).unwrap()
        );
        handle.shutdown();
        join.join().expect("join");
    }

    #[test]
    fn peering_migrates_warm_cells_instead_of_recomputing() {
        fn scratch(tag: &str) -> std::path::PathBuf {
            std::env::temp_dir().join(format!("mtvp-serve-peer-{tag}-{}", std::process::id()))
        }
        fn bind_with(cache: std::path::PathBuf, peers: Vec<String>) -> Server {
            Server::bind(ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_depth: 8,
                cache: CacheMode::Disk(cache),
                request_timeout_ms: 60_000,
                read_timeout_ms: 2_000,
                peers,
            })
            .expect("bind")
        }
        let dir_a = scratch("a");
        let dir_b = scratch("b");
        let a = bind_with(dir_a.clone(), Vec::new());
        let addr_a = a.local_addr().expect("addr").to_string();
        let (ha, ja) = (a.handle(), std::thread::spawn(move || a.run()));
        let b = bind_with(dir_b.clone(), vec![addr_a.clone()]);
        let addr_b = b.local_addr().expect("addr").to_string();
        let (hb, jb) = (b.handle(), std::thread::spawn(move || b.run()));

        // Warm worker A with one cell.
        let body = r#"{"bench": "mcf", "scale": "tiny", "config": {"mode": "baseline"}}"#;
        let (status, warm) =
            crate::loadgen::http_request(&addr_a, "POST", "/run", Some(body), 60_000).expect("run");
        assert_eq!(status, 200);
        let warm: Value = serde_json::from_str(&warm).expect("json");

        // The peering endpoint serves the raw cell; garbage hashes 400/404.
        let warm_cfg = mtvp_engine::SimConfig::new(mtvp_engine::parse_mode("baseline").unwrap());
        let key = key_of(&cell_descriptor("mcf", &warm_cfg, Scale::Tiny));
        let path = format!("/cache/cell/{}", key.hex());
        let (status, text) =
            crate::loadgen::http_request(&addr_a, "GET", &path, None, 5_000).expect("cell");
        assert_eq!(status, 200, "{text}");
        let entry: CellEntry = serde_json::from_str(&text).expect("cell json");
        assert_eq!(entry.bench, "mcf");
        let (status, _) =
            crate::loadgen::http_request(&addr_a, "GET", "/cache/cell/zz", None, 5_000)
                .expect("bad hash");
        assert_eq!(status, 400);
        let missing = format!("/cache/cell/{}", "0".repeat(32));
        let (status, _) =
            crate::loadgen::http_request(&addr_a, "GET", &missing, None, 5_000).expect("miss");
        assert_eq!(status, 404);

        // Worker B (cold cache) serves the same cell as a cache hit by
        // fetching it from its peer, with identical stats.
        let (status, text) =
            crate::loadgen::http_request(&addr_b, "POST", "/run", Some(body), 60_000).expect("run");
        assert_eq!(status, 200, "{text}");
        let v: Value = serde_json::from_str(&text).expect("json");
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("stats"), warm.get("stats"));
        let (_, m) =
            crate::loadgen::http_request(&addr_b, "GET", "/metrics", None, 5_000).expect("metrics");
        assert!(m.contains("serve.peer.hits"), "{m}");

        hb.shutdown();
        ha.shutdown();
        jb.join().expect("join").expect("run b");
        ja.join().expect("join").expect("run a");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn async_jobs_complete_via_polling() {
        let (addr, handle, join) = test_server(2, 8);
        let addr = addr.to_string();
        let body =
            r#"{"bench": "mesa", "scale": "tiny", "config": {"mode": "baseline"}, "wait": false}"#;
        let (status, text) =
            crate::loadgen::http_request(&addr, "POST", "/run", Some(body), 5_000).expect("post");
        assert_eq!(status, 202, "{text}");
        let v: Value = serde_json::from_str(&text).expect("json");
        let job = v.get("job").and_then(Value::as_u64).expect("job id");
        let (status, text) = crate::loadgen::http_request(
            &addr,
            "GET",
            &format!("/jobs/{job}/result?wait_ms=60000"),
            None,
            70_000,
        )
        .expect("poll");
        assert_eq!(status, 200, "{text}");
        let r: Value = serde_json::from_str(&text).expect("json");
        assert_eq!(r.get("bench").and_then(Value::as_str), Some("mesa"));
        handle.shutdown();
        join.join().expect("join");
    }
}
