//! Minimal SIGTERM/SIGINT latch for graceful drain.
//!
//! The workspace vendors no `libc`/`signal-hook`, so the handler is
//! installed through the C `signal(2)` entry point that `std` already
//! links against. The handler only stores into a static `AtomicBool`
//! (async-signal-safe); the accept loop polls [`triggered`] between
//! non-blocking accepts and starts the drain when it flips.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (or a [`trigger`] call) has been observed.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Latch shutdown programmatically (tests and the server handle use this
/// path on non-unix targets).
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        super::trigger();
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is async-signal-safe to install, and the
        // handler only performs an atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent; no-op off unix).
pub fn install() {
    imp::install();
}
