//! Property tests for the incremental HTTP parser.
//!
//! The load-bearing invariant: parsing is *split-invariant*. A request
//! fed to the parser in arbitrary TCP-read-sized pieces yields exactly
//! the same `Request` as parsing the same bytes in one shot — the server
//! can never behave differently because the kernel fragmented a read.
//! And no input, valid or garbage, oversized or truncated, may ever
//! panic: the worst allowed outcome is a 4xx `ParseError`.

use mtvp_serve::http::{ParseError, Parser, Request, MAX_BODY_BYTES, MAX_HEADER_BYTES};
use proptest::prelude::*;

/// Feed `bytes` in one shot.
fn one_shot(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
    Parser::new().feed(bytes)
}

/// Feed `bytes` split at the given piece sizes (the tail goes last).
/// Returns the first completion or error; `Ok(None)` if never complete.
fn fed_in_pieces(bytes: &[u8], sizes: &[usize]) -> Result<Option<Request>, ParseError> {
    let mut parser = Parser::new();
    let mut rest = bytes;
    for &n in sizes {
        let n = n.min(rest.len());
        let (piece, tail) = rest.split_at(n);
        rest = tail;
        match parser.feed(piece) {
            Ok(Some(req)) => return Ok(Some(req)),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
    parser.feed(rest)
}

/// Render a well-formed request from generated parts.
fn render(method: &str, path: &str, headers: &[(String, String)], body: Option<&[u8]>) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\n");
    for (name, value) in headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(b) = body {
        out.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    if let Some(b) = body {
        bytes.extend_from_slice(b);
    }
    bytes
}

const METHODS: &[&str] = &["GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"];
const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_./";
const VALUE_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 -_.:/;=+";

fn charset_string(indices: &[usize], charset: &[u8]) -> String {
    indices
        .iter()
        .map(|&i| charset[i % charset.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Arbitrary header/body splits across "TCP reads" parse identically
    // to a one-shot feed: same method, target, headers, body, and the
    // completion happens (no piece boundary can wedge the parser).
    #[test]
    fn split_invariance(
        method_idx in 0usize..6,
        path_idx in prop::collection::vec(0usize..40, 1..24),
        query in any::<bool>(),
        header_pairs in prop::collection::vec(
            (prop::collection::vec(0usize..40, 1..10),
             prop::collection::vec(0usize..70, 0..24)),
            0..6),
        body_bytes in prop::collection::vec(any::<u8>(), 0..300),
        with_body in any::<bool>(),
        sizes in prop::collection::vec(1usize..40, 0..64)
    ) {
        let method = METHODS[method_idx];
        let mut path = format!("/{}", charset_string(&path_idx, PATH_CHARS));
        if query {
            path.push_str("?k=v&x=1");
        }
        let headers: Vec<(String, String)> = header_pairs
            .iter()
            .enumerate()
            .map(|(i, (n, v))| {
                // Unique suffix: duplicate Content-Length-free names only.
                (
                    format!("X-{}{i}", charset_string(n, PATH_CHARS).replace(['.', '/'], "a")),
                    charset_string(v, VALUE_CHARS),
                )
            })
            .collect();
        let body = with_body.then_some(body_bytes.as_slice());
        let bytes = render(method, &path, &headers, body);

        let whole = one_shot(&bytes);
        let pieces = fed_in_pieces(&bytes, &sizes);
        prop_assert_eq!(&whole, &pieces);

        let req = whole.unwrap().expect("a rendered request parses completely");
        prop_assert_eq!(req.method.as_str(), method);
        prop_assert_eq!(req.target.as_str(), path.as_str());
        prop_assert_eq!(req.body.as_slice(), body.unwrap_or(&[]));
        for (name, value) in &headers {
            // Values are trimmed on parse; trailing generated spaces fold.
            prop_assert_eq!(req.header(name), Some(value.trim()));
        }
    }

    // Arbitrary bytes, fed in arbitrary pieces, never panic: they either
    // stay incomplete, (vanishingly rarely) complete, or fail with a 4xx
    // — and once failed the parser stays failed.
    #[test]
    fn garbage_never_panics_and_maps_to_4xx(
        junk in prop::collection::vec(any::<u8>(), 0..2048),
        sizes in prop::collection::vec(1usize..64, 0..48)
    ) {
        let mut parser = Parser::new();
        let mut rest = junk.as_slice();
        let mut failed = false;
        for &n in &sizes {
            let n = n.min(rest.len());
            let (piece, tail) = rest.split_at(n);
            rest = tail;
            match parser.feed(piece) {
                Ok(_) => prop_assert!(!failed, "parser recovered after an error"),
                Err(e) => {
                    let s = e.status();
                    prop_assert!(
                        s == 400 || s == 413 || s == 431,
                        "non-4xx parse status {s}"
                    );
                    failed = true;
                }
            }
        }
    }

    // Size caps always hold, wherever the boundary falls: oversized
    // headers are 431 and oversized declared bodies are 413, regardless
    // of how the bytes are chunked.
    #[test]
    fn oversize_is_always_rejected(
        header_pad in 0usize..4096,
        body_excess in 1usize..4096,
        sizes in prop::collection::vec(1usize..512, 1..32)
    ) {
        // Headers strictly beyond the cap (never a terminator in sight).
        let big = vec![b'A'; MAX_HEADER_BYTES + 1 + header_pad];
        prop_assert_eq!(fed_in_pieces(&big, &sizes), Err(ParseError::HeadersTooLarge));

        // A valid head declaring an oversized body.
        let req = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + body_excess
        );
        prop_assert_eq!(
            fed_in_pieces(req.as_bytes(), &sizes),
            Err(ParseError::BodyTooLarge)
        );
    }
}
