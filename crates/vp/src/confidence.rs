//! Saturating confidence counters with the paper's asymmetric update.

use serde::{Deserialize, Serialize};

/// Parameters of a confidence counter (§5.4: "+1 on correct predictions,
/// −8 on incorrect predictions, threshold 12, maximum 32").
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfidenceConfig {
    /// Increment applied on a correct prediction.
    pub up: u16,
    /// Decrement applied on an incorrect prediction.
    pub down: u16,
    /// Counter value at or above which a prediction is *confident*.
    pub threshold: u16,
    /// Saturation maximum.
    pub max: u16,
}

impl ConfidenceConfig {
    /// The paper's parameters: +1 / −8, threshold 12, max 32.
    pub fn hpca2005() -> Self {
        ConfidenceConfig {
            up: 1,
            down: 8,
            threshold: 12,
            max: 32,
        }
    }

    /// A "more liberal" configuration that lets several candidates be over
    /// threshold at once — used for the multiple-value experiments (§5.6).
    pub fn liberal() -> Self {
        ConfidenceConfig {
            up: 2,
            down: 2,
            threshold: 6,
            max: 32,
        }
    }
}

/// A saturating confidence counter.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfidenceCounter(u16);

impl ConfidenceCounter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current raw value.
    pub fn value(self) -> u16 {
        self.0
    }

    /// Whether the counter is at or above the confidence threshold.
    pub fn confident(self, cfg: &ConfidenceConfig) -> bool {
        self.0 >= cfg.threshold
    }

    /// Apply the "correct prediction" update.
    pub fn reward(&mut self, cfg: &ConfidenceConfig) {
        self.0 = (self.0 + cfg.up).min(cfg.max);
    }

    /// Apply the "incorrect prediction" update.
    pub fn penalize(&mut self, cfg: &ConfidenceConfig) {
        self.0 = self.0.saturating_sub(cfg.down);
    }

    /// Reset to zero (entry replacement).
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_threshold_after_twelve_corrects() {
        let cfg = ConfidenceConfig::hpca2005();
        let mut c = ConfidenceCounter::new();
        for i in 0..12 {
            assert!(!c.confident(&cfg), "confident too early at step {i}");
            c.reward(&cfg);
        }
        assert!(c.confident(&cfg));
    }

    #[test]
    fn one_miss_undoes_eight_corrects() {
        let cfg = ConfidenceConfig::hpca2005();
        let mut c = ConfidenceCounter::new();
        for _ in 0..20 {
            c.reward(&cfg);
        }
        assert_eq!(c.value(), 20);
        c.penalize(&cfg);
        assert_eq!(c.value(), 12);
        c.penalize(&cfg);
        assert!(!c.confident(&cfg));
    }

    #[test]
    fn saturates_at_max_and_zero() {
        let cfg = ConfidenceConfig::hpca2005();
        let mut c = ConfidenceCounter::new();
        for _ in 0..100 {
            c.reward(&cfg);
        }
        assert_eq!(c.value(), 32);
        for _ in 0..100 {
            c.penalize(&cfg);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn reset_clears() {
        let cfg = ConfidenceConfig::hpca2005();
        let mut c = ConfidenceCounter::new();
        for _ in 0..32 {
            c.reward(&cfg);
        }
        c.reset();
        assert_eq!(c.value(), 0);
        assert!(!c.confident(&cfg));
    }
}
