//! Order-3 differential FCM with Burtscher's improved index function
//! (§5.4 of the paper; Burtscher, CAN 30(3), 2002).
//!
//! Like FCM, but the context is the history of *deltas* between successive
//! values, and level 2 predicts the next delta. Burtscher's improvement is
//! an index function that draws more bits from the most recent delta and
//! progressively fewer from older ones, instead of hashing all deltas
//! symmetrically — recent deltas carry more information.

use crate::confidence::{ConfidenceConfig, ConfidenceCounter};
use crate::fcm::fold16;
use crate::{Predicted, Prediction, PredictorCounters, ValuePredictor};
use serde::{Deserialize, Serialize};

/// DFCM sizing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfcmConfig {
    /// Level-1 (per-PC) entries, power of two.
    pub l1_entries: usize,
    /// Level-2 (delta-context → next delta) entries, power of two.
    pub l2_entries: usize,
    /// Confidence parameters.
    pub confidence: ConfidenceConfig,
}

impl DfcmConfig {
    /// Size comparable to the paper's Wang–Franklin predictor
    /// ("an improved third order DFCM predictor with similar size").
    pub fn hpca2005() -> Self {
        DfcmConfig {
            l1_entries: 4096,
            l2_entries: 32 * 1024,
            confidence: ConfidenceConfig::hpca2005(),
        }
    }
}

#[derive(Clone, Debug, Default)]
struct L1Entry {
    valid: bool,
    pc: u64,
    last: u64,
    spec_last: u64,
    deltas: [i64; 3],
}

#[derive(Copy, Clone, Debug, Default)]
struct L2Entry {
    delta: i64,
    conf: ConfidenceCounter,
}

/// The order-3 DFCM predictor.
#[derive(Clone, Debug)]
pub struct DfcmPredictor {
    cfg: DfcmConfig,
    l1: Vec<L1Entry>,
    l2: Vec<L2Entry>,
    counters: PredictorCounters,
}

impl DfcmPredictor {
    /// Create a DFCM predictor.
    ///
    /// # Panics
    /// Panics if table sizes are not powers of two.
    pub fn new(cfg: DfcmConfig) -> Self {
        assert!(
            cfg.l1_entries.is_power_of_two(),
            "L1 size must be a power of two"
        );
        assert!(
            cfg.l2_entries.is_power_of_two(),
            "L2 size must be a power of two"
        );
        DfcmPredictor {
            l1: vec![L1Entry::default(); cfg.l1_entries],
            l2: vec![L2Entry::default(); cfg.l2_entries],
            cfg,
            counters: PredictorCounters::default(),
        }
    }

    #[inline]
    fn l1_idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.l1_entries - 1)
    }

    /// Burtscher-style asymmetric index: the newest delta contributes its
    /// full folded 16 bits; older deltas are shifted so their bits overlap
    /// progressively less significant positions.
    fn delta_hash(&self, deltas: &[i64; 3], pc: u64) -> usize {
        let d0 = fold16(deltas[0] as u64);
        let d1 = fold16(deltas[1] as u64) >> 2;
        let d2 = fold16(deltas[2] as u64) >> 4;
        let h = d0 ^ (d1 << 5) ^ (d2 << 9) ^ (pc & 0x3F);
        (h as usize) & (self.cfg.l2_entries - 1)
    }
}

impl ValuePredictor for DfcmPredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.counters.queries += 1;
        let i = self.l1_idx(pc);
        let e = &self.l1[i];
        if !e.valid || e.pc != pc {
            return Prediction::none();
        }
        let l2 = &self.l2[self.delta_hash(&e.deltas, pc)];
        let value = e.spec_last.wrapping_add(l2.delta as u64);
        let confident = l2.conf.confident(&self.cfg.confidence);
        if confident {
            self.counters.confident += 1;
        }
        Prediction {
            primary: Some(Predicted { value, confident }),
            alternates: vec![],
        }
    }

    fn spec_update(&mut self, pc: u64, value: u64) {
        let i = self.l1_idx(pc);
        let e = &mut self.l1[i];
        if e.valid && e.pc == pc {
            e.spec_last = value;
        }
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.counters.trains += 1;
        let i = self.l1_idx(pc);
        if !self.l1[i].valid || self.l1[i].pc != pc {
            self.l1[i] = L1Entry {
                valid: true,
                pc,
                last: actual,
                spec_last: actual,
                deltas: [0; 3],
            };
            return;
        }
        let ctx = self.delta_hash(&self.l1[i].deltas, pc);
        let actual_delta = actual.wrapping_sub(self.l1[i].last) as i64;
        let conf_cfg = self.cfg.confidence;
        let l2 = &mut self.l2[ctx];
        if l2.delta == actual_delta {
            l2.conf.reward(&conf_cfg);
        } else {
            l2.conf.penalize(&conf_cfg);
            if l2.conf.value() == 0 {
                l2.delta = actual_delta;
            }
        }
        let e = &mut self.l1[i];
        e.deltas.rotate_right(1);
        e.deltas[0] = actual_delta;
        e.last = actual;
        e.spec_last = actual;
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfcm() -> DfcmPredictor {
        DfcmPredictor::new(DfcmConfig {
            l1_entries: 64,
            l2_entries: 1024,
            ..DfcmConfig::hpca2005()
        })
    }

    #[test]
    fn learns_constant_stride() {
        let mut p = dfcm();
        for i in 0..40u64 {
            p.train(0x10, i * 16);
        }
        assert_eq!(p.predict(0x10).confident_value(), Some(40 * 16));
    }

    #[test]
    fn learns_repeating_delta_pattern() {
        // Values walk +8, +8, -16 repeatedly (a 3-phase pointer walk);
        // stride predictors thrash on this but order-3 DFCM nails it.
        let mut p = dfcm();
        let mut v = 1000u64;
        let deltas = [8i64, 8, -16];
        let mut hits = 0;
        let mut total = 0;
        for rep in 0..300 {
            let d = deltas[rep % 3];
            v = v.wrapping_add(d as u64);
            if rep > 100 {
                total += 1;
                if p.predict(0x20).confident_value() == Some(v) {
                    hits += 1;
                }
            }
            p.train(0x20, v);
        }
        assert!(hits as f64 / total as f64 > 0.95, "{hits}/{total}");
    }

    #[test]
    fn speculative_chaining() {
        let mut p = dfcm();
        for i in 0..40u64 {
            p.train(0x30, i * 8);
        }
        let v1 = p.predict(0x30).confident_value().unwrap();
        p.spec_update(0x30, v1);
        let v2 = p.predict(0x30).confident_value().unwrap();
        assert_eq!(v2, v1 + 8);
    }

    #[test]
    fn random_sequence_low_confidence() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut p = dfcm();
        let mut confident = 0;
        for _ in 0..500 {
            if p.predict(0x40).confident_value().is_some() {
                confident += 1;
            }
            p.train(0x40, rng.r#gen());
        }
        assert!(
            confident < 25,
            "{confident} confident predictions on random data"
        );
    }

    #[test]
    fn is_more_aggressive_than_wang_franklin_style_confidence() {
        // The paper notes DFCM makes more predictions (correct and
        // incorrect). Sanity-check the mechanism exists: after a change of
        // regime the predictor re-learns within a few trains.
        let mut p = dfcm();
        for i in 0..40u64 {
            p.train(0x50, i * 4);
        }
        for i in 0..40u64 {
            p.train(0x50, 100_000 + i * 4);
        }
        assert!(p.predict(0x50).confident_value().is_some());
    }
}
