//! Order-k finite context method (FCM) value predictor
//! (Sazeides & Smith, "The predictability of data values").
//!
//! Level 1 is a PC-indexed table recording the last `k` values produced by
//! each load; level 2 maps a hash of that value history to the value that
//! followed it last time, with a confidence counter.

use crate::confidence::{ConfidenceConfig, ConfidenceCounter};
use crate::{Predicted, Prediction, PredictorCounters, ValuePredictor};
use serde::{Deserialize, Serialize};

/// FCM sizing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FcmConfig {
    /// Level-1 (per-PC history) entries, power of two.
    pub l1_entries: usize,
    /// Level-2 (context → value) entries, power of two.
    pub l2_entries: usize,
    /// Context order (number of previous values hashed), 1..=4.
    pub order: usize,
    /// Confidence parameters.
    pub confidence: ConfidenceConfig,
}

impl FcmConfig {
    /// A size-comparable configuration to the paper's predictors.
    pub fn hpca2005() -> Self {
        FcmConfig {
            l1_entries: 4096,
            l2_entries: 32 * 1024,
            order: 3,
            confidence: ConfidenceConfig::hpca2005(),
        }
    }
}

/// Fold a 64-bit value into 16 bits for context hashing.
#[inline]
pub(crate) fn fold16(v: u64) -> u64 {
    (v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)) & 0xFFFF
}

#[derive(Clone, Debug, Default)]
struct L1Entry {
    valid: bool,
    pc: u64,
    history: [u64; 4],
}

#[derive(Copy, Clone, Debug, Default)]
struct L2Entry {
    value: u64,
    conf: ConfidenceCounter,
}

/// The order-k FCM predictor.
#[derive(Clone, Debug)]
pub struct FcmPredictor {
    cfg: FcmConfig,
    l1: Vec<L1Entry>,
    l2: Vec<L2Entry>,
    counters: PredictorCounters,
}

impl FcmPredictor {
    /// Create an FCM predictor.
    ///
    /// # Panics
    /// Panics if table sizes are not powers of two or `order` is not 1..=4.
    pub fn new(cfg: FcmConfig) -> Self {
        assert!(
            cfg.l1_entries.is_power_of_two(),
            "L1 size must be a power of two"
        );
        assert!(
            cfg.l2_entries.is_power_of_two(),
            "L2 size must be a power of two"
        );
        assert!((1..=4).contains(&cfg.order), "order must be in 1..=4");
        FcmPredictor {
            l1: vec![L1Entry::default(); cfg.l1_entries],
            l2: vec![L2Entry::default(); cfg.l2_entries],
            cfg,
            counters: PredictorCounters::default(),
        }
    }

    #[inline]
    fn l1_idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.l1_entries - 1)
    }

    fn context_hash(&self, history: &[u64; 4]) -> usize {
        let mut h = 0u64;
        for (i, v) in history.iter().take(self.cfg.order).enumerate() {
            h ^= fold16(*v) << (i * 3);
        }
        (h as usize) & (self.cfg.l2_entries - 1)
    }
}

impl ValuePredictor for FcmPredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.counters.queries += 1;
        let e = &self.l1[self.l1_idx(pc)];
        if !e.valid || e.pc != pc {
            return Prediction::none();
        }
        let l2 = &self.l2[self.context_hash(&e.history)];
        let confident = l2.conf.confident(&self.cfg.confidence);
        if confident {
            self.counters.confident += 1;
        }
        Prediction {
            primary: Some(Predicted {
                value: l2.value,
                confident,
            }),
            alternates: vec![],
        }
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.counters.trains += 1;
        let i = self.l1_idx(pc);
        if !self.l1[i].valid || self.l1[i].pc != pc {
            self.l1[i] = L1Entry {
                valid: true,
                pc,
                history: [0; 4],
            };
        }
        let ctx = self.context_hash(&self.l1[i].history);
        let conf_cfg = self.cfg.confidence;
        let l2 = &mut self.l2[ctx];
        if l2.value == actual {
            l2.conf.reward(&conf_cfg);
        } else {
            l2.conf.penalize(&conf_cfg);
            if l2.conf.value() == 0 {
                l2.value = actual;
            }
        }
        // Shift the new value into the history.
        let h = &mut self.l1[i].history;
        h.rotate_right(1);
        h[0] = actual;
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fcm() -> FcmPredictor {
        FcmPredictor::new(FcmConfig {
            l1_entries: 64,
            l2_entries: 1024,
            ..FcmConfig::hpca2005()
        })
    }

    #[test]
    fn learns_repeating_value_sequence() {
        // A period-3 sequence is exactly what order-3 FCM captures
        // (and stride predictors cannot: deltas are not constant).
        let seq = [5u64, 9, 2];
        let mut p = fcm();
        for rep in 0..200 {
            let v = seq[rep % 3];
            if rep > 50 {
                let pred = p.predict(0x10);
                assert_eq!(
                    pred.confident_value(),
                    Some(v),
                    "rep {rep}: expected {v}, got {pred:?}"
                );
            }
            p.train(0x10, v);
        }
    }

    #[test]
    fn constant_value_is_learned() {
        let mut p = fcm();
        for _ in 0..40 {
            p.train(0x14, 77);
        }
        assert_eq!(p.predict(0x14).confident_value(), Some(77));
    }

    #[test]
    fn random_values_are_not_confident() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut p = fcm();
        let mut confident = 0;
        for _ in 0..500 {
            if p.predict(0x18).confident_value().is_some() {
                confident += 1;
            }
            p.train(0x18, rng.r#gen());
        }
        assert!(
            confident < 25,
            "random sequence predicted confidently {confident} times"
        );
    }

    #[test]
    fn unknown_pc_gives_nothing() {
        let mut p = fcm();
        assert_eq!(p.predict(0xABC).primary, None);
    }

    #[test]
    fn fold16_mixes_high_bits() {
        assert_ne!(fold16(0x0001_0000_0000_0000), fold16(0x0002_0000_0000_0000));
        assert_eq!(fold16(0), 0);
        assert!(fold16(u64::MAX) <= 0xFFFF);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn bad_order_panics() {
        let _ = FcmPredictor::new(FcmConfig {
            order: 5,
            ..FcmConfig::hpca2005()
        });
    }
}
