//! # mtvp-vp
//!
//! Load-value prediction for the MTVP simulator: the predictors and
//! criticality ("load selection") machinery of §3.1, §5.1 and §5.4 of
//! *Multithreaded Value Prediction* (Tuck & Tullsen, HPCA-11 2005).
//!
//! - [`LastValuePredictor`], [`StridePredictor`] — classic baselines;
//! - [`FcmPredictor`] — order-k finite context method;
//! - [`DfcmPredictor`] — order-3 differential FCM with Burtscher's
//!   improved index function;
//! - [`WangFranklinPredictor`] — the paper's default realistic predictor:
//!   a 4K-entry value history table (5 learned values, hardwired 0 and 1,
//!   and a stride value) with a 32K-entry value pattern history table of
//!   confidence counters (+1 correct / −8 incorrect, threshold 12, max
//!   32), capable of *multiple-value* prediction (§5.6);
//! - [`OraclePredictor`] — exact future values from a committed-path
//!   [`mtvp_isa::trace::Trace`];
//! - [`IlpPred`] — the paper's forward-progress criticality predictor that
//!   decides, per load PC, whether no prediction, single-threaded VP, or
//!   multithreaded VP has historically been most profitable.
//!
//! # Example
//!
//! ```
//! use mtvp_vp::{WangFranklinPredictor, WangFranklinConfig, ValuePredictor};
//!
//! let mut p = WangFranklinPredictor::new(WangFranklinConfig::hpca2005());
//! // A load that always returns the same value trains up to confidence.
//! for _ in 0..200u64 {
//!     p.train(0x40, 7);
//! }
//! let pred = p.predict(0x40);
//! assert_eq!(pred.confident_value(), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confidence;
mod dfcm;
mod fcm;
mod oracle;
mod select;
mod simple;
mod wang_franklin;

pub use confidence::{ConfidenceConfig, ConfidenceCounter};
pub use dfcm::{DfcmConfig, DfcmPredictor};
pub use fcm::{FcmConfig, FcmPredictor};
pub use oracle::OraclePredictor;
pub use select::{IlpPred, IlpPredConfig, SelectDecision, VpClass};
pub use simple::{LastValuePredictor, StridePredictor};
pub use wang_franklin::{WangFranklinConfig, WangFranklinPredictor};

use serde::{Deserialize, Serialize};

/// A predicted load value with its confidence state.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicted {
    /// The predicted 64-bit value.
    pub value: u64,
    /// Whether the predictor's confidence is above its use-threshold.
    pub confident: bool,
}

/// The result of querying a value predictor for one load.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Best candidate, if the predictor has one at all.
    pub primary: Option<Predicted>,
    /// Additional above-threshold candidates, best-first, used by
    /// multiple-value MTVP (§5.6). Empty for single-value predictors.
    pub alternates: Vec<u64>,
}

impl Prediction {
    /// A prediction with no candidate.
    pub fn none() -> Self {
        Prediction::default()
    }

    /// The primary value if it is confident.
    pub fn confident_value(&self) -> Option<u64> {
        match self.primary {
            Some(p) if p.confident => Some(p.value),
            _ => None,
        }
    }
}

/// Common interface of the realistic (PC-indexed) load-value predictors.
///
/// The pipeline calls [`ValuePredictor::predict`] at the rename/queue
/// stage and [`ValuePredictor::train`] when the load *commits* with its
/// architecturally correct value (§5.4). [`ValuePredictor::spec_update`]
/// lets stride-bearing predictors speculatively advance their last-value
/// state at prediction time, as the paper does for the stride component.
pub trait ValuePredictor {
    /// Predict the value of the load at `pc`.
    fn predict(&mut self, pc: u64) -> Prediction;

    /// Speculatively note that `value` was predicted (and will be consumed)
    /// for the load at `pc`. Default: no-op.
    fn spec_update(&mut self, pc: u64, value: u64) {
        let _ = (pc, value);
    }

    /// Train with the committed value of the load at `pc`.
    fn train(&mut self, pc: u64, actual: u64);

    /// Usage counters.
    fn counters(&self) -> PredictorCounters;
}

/// Basic usage counters every predictor keeps.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorCounters {
    /// Calls to `predict`.
    pub queries: u64,
    /// Queries that returned a confident primary value.
    pub confident: u64,
    /// Training events.
    pub trains: u64,
}
