//! Trace-backed oracle value predictor (§5.1).
//!
//! "The oracle predictor always predicts the correct value for any load it
//! chooses to predict. The value predictor does not perform predictions
//! when the processor is fetching down the wrong path." Both properties
//! fall out of the committed-path trace: the query carries the dynamic
//! instruction index the fetching thread *believes* it is at; if the PC at
//! that index doesn't match the trace, the thread is on a wrong path and
//! the oracle abstains.

use mtvp_isa::trace::Trace;
use std::sync::Arc;

/// The oracle load-value predictor.
#[derive(Clone, Debug)]
pub struct OraclePredictor {
    trace: Arc<Trace>,
    queries: u64,
    answered: u64,
}

impl OraclePredictor {
    /// Build an oracle from a committed-path trace (produced by
    /// [`mtvp_isa::interp::Interp::run_traced`]).
    pub fn new(trace: Arc<Trace>) -> Self {
        OraclePredictor {
            trace,
            queries: 0,
            answered: 0,
        }
    }

    /// The exact value the load at committed-path position `dyn_idx` with
    /// program counter `pc` will return — or `None` if the position/PC pair
    /// is off the committed path (wrong-path fetch) or not a load.
    pub fn predict_at(&mut self, dyn_idx: u64, pc: u64) -> Option<u64> {
        self.queries += 1;
        let v = self.trace.oracle_load_value(dyn_idx as usize, pc);
        if v.is_some() {
            self.answered += 1;
        }
        v
    }

    /// (queries, answered) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.queries, self.answered)
    }

    /// Length of the underlying trace (committed-path dynamic instructions).
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::interp::{Interp, SimpleBus};
    use mtvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn oracle_answers_only_on_path_loads() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc_u64(&[11, 22]);
        b.li(Reg(1), a as i64); // 0
        b.ld(Reg(2), Reg(1), 0); // 1
        b.ld(Reg(3), Reg(1), 8); // 2
        b.halt(); // 3
        let p = b.build();
        let mut bus = SimpleBus::new();
        let (_, trace) = Interp::new(&p).run_traced(&mut bus, 100);
        let mut o = OraclePredictor::new(Arc::new(trace));
        assert_eq!(o.predict_at(1, 1), Some(11));
        assert_eq!(o.predict_at(2, 2), Some(22));
        assert_eq!(o.predict_at(0, 0), None); // li: not a load
        assert_eq!(o.predict_at(1, 2), None); // wrong-path: pc mismatch
        assert_eq!(o.predict_at(99, 1), None); // past the end
        assert_eq!(o.counters(), (5, 2));
        assert_eq!(o.trace_len(), 4);
    }
}
