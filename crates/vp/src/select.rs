//! Criticality / load-selection predictors (§5.1).
//!
//! The paper's best selector, **ILP-pred**, tracks per load PC the average
//! forward progress (issued instructions per cycle) achieved between
//! making a value prediction and confirming it, separately for three
//! outcomes: no prediction, single-threaded VP, and multithreaded VP. A
//! prediction class is allowed only if its measured rate beats the
//! no-prediction rate. Rates are compared with the paper's shift trick:
//! "shifting down the forward progress counter by the largest integer
//! power of two in the aggregate cycle count" — no divider needed.

use serde::{Deserialize, Serialize};

/// Outcome class of a (non-)prediction episode.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VpClass {
    /// No value prediction was made for the load.
    NoVp,
    /// Single-threaded value prediction.
    Stvp,
    /// Multithreaded (spawned) value prediction.
    Mtvp,
}

impl VpClass {
    /// Stable display name (observability labels).
    pub fn name(self) -> &'static str {
        match self {
            VpClass::NoVp => "no_vp",
            VpClass::Stvp => "stvp",
            VpClass::Mtvp => "mtvp",
        }
    }

    fn index(self) -> usize {
        match self {
            VpClass::NoVp => 0,
            VpClass::Stvp => 1,
            VpClass::Mtvp => 2,
        }
    }
}

/// What the selector permits for a particular load.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectDecision {
    /// Single-threaded value prediction is expected profitable.
    pub allow_stvp: bool,
    /// Spawning a prediction thread is expected profitable.
    pub allow_mtvp: bool,
}

impl SelectDecision {
    /// Permit everything (the "always" selector).
    pub fn allow_all() -> Self {
        SelectDecision {
            allow_stvp: true,
            allow_mtvp: true,
        }
    }

    /// Permit nothing.
    pub fn deny_all() -> Self {
        SelectDecision {
            allow_stvp: false,
            allow_mtvp: false,
        }
    }
}

/// ILP-pred sizing and policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IlpPredConfig {
    /// Table entries (power of two, direct mapped, tagged).
    pub entries: usize,
    /// Minimum episodes per class before its rate is trusted; classes with
    /// fewer samples are optimistically allowed (exploration).
    pub min_samples: u32,
    /// Every `explore_period`-th query forces a no-prediction episode so
    /// the baseline rate stays fresh.
    pub explore_period: u32,
}

impl IlpPredConfig {
    /// Default configuration used throughout the experiments.
    pub fn hpca2005() -> Self {
        IlpPredConfig {
            entries: 4096,
            min_samples: 4,
            explore_period: 32,
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct ClassStats {
    /// Issued instructions accumulated across episodes.
    progress: u64,
    /// Cycles accumulated across episodes.
    cycles: u64,
    samples: u32,
}

impl ClassStats {
    /// The paper's imprecise divider-free rate: progress shifted down by
    /// floor(log2(cycles)). Progress is pre-scaled by 256 (a fixed-point
    /// shift, still just wiring in hardware) so rates below one
    /// instruction per cycle — where long-latency loads live — do not all
    /// quantize to zero.
    fn rate(&self) -> u64 {
        if self.cycles == 0 {
            return 0;
        }
        (self.progress << 8) >> (63 - self.cycles.leading_zeros())
    }

    fn record(&mut self, progress: u64, cycles: u64) {
        // Halve on overflow risk so old behaviour decays.
        if self.progress > (1 << 40) || self.cycles > (1 << 40) {
            self.progress >>= 1;
            self.cycles >>= 1;
        }
        self.progress += progress;
        self.cycles += cycles.max(1);
        self.samples = self.samples.saturating_add(1);
    }
}

#[derive(Clone, Debug, Default)]
struct Entry {
    valid: bool,
    pc: u64,
    classes: [ClassStats; 3],
    queries: u32,
}

/// Per-PC forward-progress statistics of ILP-pred.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IlpPredCounters {
    /// Selector queries.
    pub queries: u64,
    /// Queries that permitted MTVP.
    pub allowed_mtvp: u64,
    /// Queries that permitted STVP (only counts when MTVP was not also taken).
    pub allowed_stvp: u64,
    /// Episodes recorded.
    pub episodes: u64,
}

/// The ILP-pred load selector.
#[derive(Clone, Debug)]
pub struct IlpPred {
    cfg: IlpPredConfig,
    entries: Vec<Entry>,
    counters: IlpPredCounters,
}

impl IlpPred {
    /// Create a selector.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(cfg: IlpPredConfig) -> Self {
        assert!(
            cfg.entries.is_power_of_two(),
            "table size must be a power of two"
        );
        IlpPred {
            entries: vec![Entry::default(); cfg.entries],
            cfg,
            counters: IlpPredCounters::default(),
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.entries - 1)
    }

    /// Decide whether value prediction (of either flavour) should be used
    /// for the load at `pc`.
    pub fn decide(&mut self, pc: u64) -> SelectDecision {
        self.counters.queries += 1;
        let i = self.idx(pc);
        let e = &mut self.entries[i];
        if !e.valid || e.pc != pc {
            *e = Entry {
                valid: true,
                pc,
                ..Entry::default()
            };
        }
        e.queries = e.queries.wrapping_add(1);
        // Periodic exploration: refresh the no-prediction baseline.
        if self.cfg.explore_period > 0 && e.queries.is_multiple_of(self.cfg.explore_period) {
            return SelectDecision::deny_all();
        }
        let [none, stvp, mtvp] = &e.classes;
        let unknown = |c: &ClassStats| c.samples < self.cfg.min_samples;
        let baseline_unknown = unknown(none);
        // A prediction class must beat the no-prediction rate by a 1/8
        // margin: episodes measured while the machine ran fast (because
        // prediction was mostly denied) would otherwise flip the decision
        // back and forth.
        let bar = none.rate() + (none.rate() >> 3);
        let allow_stvp = unknown(stvp) || baseline_unknown || stvp.rate() > bar;
        let allow_mtvp = unknown(mtvp) || baseline_unknown || mtvp.rate() > bar;
        if allow_mtvp {
            self.counters.allowed_mtvp += 1;
        } else if allow_stvp {
            self.counters.allowed_stvp += 1;
        }
        SelectDecision {
            allow_stvp,
            allow_mtvp,
        }
    }

    /// Record a finished episode for the load at `pc`: between prediction
    /// (or, for [`VpClass::NoVp`], load issue) and confirmation,
    /// `progress` instructions issued over `cycles` cycles.
    pub fn record(&mut self, pc: u64, class: VpClass, progress: u64, cycles: u64) {
        self.counters.episodes += 1;
        let i = self.idx(pc);
        let e = &mut self.entries[i];
        if !e.valid || e.pc != pc {
            *e = Entry {
                valid: true,
                pc,
                ..Entry::default()
            };
        }
        e.classes[class.index()].record(progress, cycles);
    }

    /// Accumulated counters.
    pub fn counters(&self) -> IlpPredCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel() -> IlpPred {
        IlpPred::new(IlpPredConfig {
            entries: 64,
            min_samples: 2,
            explore_period: 0,
        })
    }

    fn feed(s: &mut IlpPred, pc: u64, class: VpClass, ipc_x16: u64, n: usize) {
        for _ in 0..n {
            s.record(pc, class, ipc_x16 * 64, 16 * 64);
        }
    }

    #[test]
    fn unknown_classes_are_explored() {
        let mut s = sel();
        let d = s.decide(0x10);
        assert!(d.allow_stvp && d.allow_mtvp);
    }

    #[test]
    fn mtvp_allowed_when_it_beats_baseline() {
        let mut s = sel();
        feed(&mut s, 0x10, VpClass::NoVp, 4, 8); // baseline: 4/16 IPC
        feed(&mut s, 0x10, VpClass::Mtvp, 16, 8); // mtvp: 16/16 IPC
        feed(&mut s, 0x10, VpClass::Stvp, 2, 8); // stvp: worse than baseline
        let d = s.decide(0x10);
        assert!(d.allow_mtvp);
        assert!(!d.allow_stvp);
    }

    #[test]
    fn harmful_prediction_is_disallowed() {
        let mut s = sel();
        feed(&mut s, 0x20, VpClass::NoVp, 16, 8);
        feed(&mut s, 0x20, VpClass::Mtvp, 4, 8);
        feed(&mut s, 0x20, VpClass::Stvp, 4, 8);
        let d = s.decide(0x20);
        assert!(!d.allow_mtvp && !d.allow_stvp);
    }

    #[test]
    fn exploration_period_forces_baseline_episodes() {
        let mut s = IlpPred::new(IlpPredConfig {
            entries: 64,
            min_samples: 2,
            explore_period: 4,
        });
        let mut denied = 0;
        for _ in 0..16 {
            let d = s.decide(0x30);
            if d == SelectDecision::deny_all() {
                denied += 1;
            }
        }
        assert_eq!(denied, 4);
    }

    #[test]
    fn rate_shift_trick_orders_correctly() {
        let fast = ClassStats {
            progress: 1600,
            cycles: 1000,
            samples: 10,
        };
        let slow = ClassStats {
            progress: 400,
            cycles: 1000,
            samples: 10,
        };
        assert!(fast.rate() > slow.rate());
        let empty = ClassStats::default();
        assert_eq!(empty.rate(), 0);
    }

    #[test]
    fn distinct_pcs_tracked_separately() {
        let mut s = sel();
        feed(&mut s, 0x10, VpClass::NoVp, 16, 8);
        feed(&mut s, 0x10, VpClass::Mtvp, 2, 8);
        feed(&mut s, 0x10, VpClass::Stvp, 2, 8);
        feed(&mut s, 0x11, VpClass::NoVp, 2, 8);
        feed(&mut s, 0x11, VpClass::Mtvp, 16, 8);
        feed(&mut s, 0x11, VpClass::Stvp, 2, 8);
        assert!(!s.decide(0x10).allow_mtvp);
        assert!(s.decide(0x11).allow_mtvp);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = sel();
        let _ = s.decide(0x40);
        s.record(0x40, VpClass::Mtvp, 100, 10);
        let c = s.counters();
        assert_eq!(c.queries, 1);
        assert_eq!(c.episodes, 1);
    }

    #[test]
    fn decision_constructors() {
        assert!(SelectDecision::allow_all().allow_mtvp);
        assert!(!SelectDecision::deny_all().allow_stvp);
    }
}
