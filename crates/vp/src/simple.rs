//! Last-value and stride predictors (Lipasti/Shen-style baselines).

use crate::confidence::{ConfidenceConfig, ConfidenceCounter};
use crate::{Predicted, Prediction, PredictorCounters, ValuePredictor};

#[derive(Copy, Clone, Debug, Default)]
struct LastValueEntry {
    valid: bool,
    pc: u64,
    value: u64,
    conf: ConfidenceCounter,
}

/// Predicts that a load returns the same value it returned last time.
#[derive(Clone, Debug)]
pub struct LastValuePredictor {
    entries: Vec<LastValueEntry>,
    conf_cfg: ConfidenceConfig,
    counters: PredictorCounters,
}

impl LastValuePredictor {
    /// Create a predictor with `entries` direct-mapped slots.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, conf_cfg: ConfidenceConfig) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        LastValuePredictor {
            entries: vec![LastValueEntry::default(); entries],
            conf_cfg,
            counters: PredictorCounters::default(),
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }
}

impl ValuePredictor for LastValuePredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.counters.queries += 1;
        let e = &self.entries[self.idx(pc)];
        if e.valid && e.pc == pc {
            let confident = e.conf.confident(&self.conf_cfg);
            if confident {
                self.counters.confident += 1;
            }
            Prediction {
                primary: Some(Predicted {
                    value: e.value,
                    confident,
                }),
                alternates: vec![],
            }
        } else {
            Prediction::none()
        }
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.counters.trains += 1;
        let i = self.idx(pc);
        let cfg = self.conf_cfg;
        let e = &mut self.entries[i];
        if e.valid && e.pc == pc {
            if e.value == actual {
                e.conf.reward(&cfg);
            } else {
                e.conf.penalize(&cfg);
                e.value = actual;
            }
        } else {
            *e = LastValueEntry {
                valid: true,
                pc,
                value: actual,
                conf: ConfidenceCounter::new(),
            };
        }
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct StrideEntry {
    valid: bool,
    pc: u64,
    last: u64,
    /// Speculative last value, advanced at predict time so that several
    /// in-flight instances of the same load chain their strides.
    spec_last: u64,
    stride: i64,
    conf: ConfidenceCounter,
}

/// Classic stride value predictor: `next = last + stride`, with the stride
/// component speculatively updated at prediction time (§5.4).
#[derive(Clone, Debug)]
pub struct StridePredictor {
    entries: Vec<StrideEntry>,
    conf_cfg: ConfidenceConfig,
    counters: PredictorCounters,
}

impl StridePredictor {
    /// Create a predictor with `entries` direct-mapped slots.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, conf_cfg: ConfidenceConfig) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        StridePredictor {
            entries: vec![StrideEntry::default(); entries],
            conf_cfg,
            counters: PredictorCounters::default(),
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }
}

impl ValuePredictor for StridePredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.counters.queries += 1;
        let i = self.idx(pc);
        let cfg = self.conf_cfg;
        let e = &mut self.entries[i];
        if e.valid && e.pc == pc {
            let value = e.spec_last.wrapping_add(e.stride as u64);
            let confident = e.conf.confident(&cfg);
            if confident {
                self.counters.confident += 1;
            }
            Prediction {
                primary: Some(Predicted { value, confident }),
                alternates: vec![],
            }
        } else {
            Prediction::none()
        }
    }

    fn spec_update(&mut self, pc: u64, value: u64) {
        let i = self.idx(pc);
        let e = &mut self.entries[i];
        if e.valid && e.pc == pc {
            e.spec_last = value;
        }
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.counters.trains += 1;
        let i = self.idx(pc);
        let cfg = self.conf_cfg;
        let e = &mut self.entries[i];
        if e.valid && e.pc == pc {
            let predicted = e.last.wrapping_add(e.stride as u64);
            if predicted == actual {
                e.conf.reward(&cfg);
            } else {
                e.conf.penalize(&cfg);
                e.stride = actual.wrapping_sub(e.last) as i64;
            }
            e.last = actual;
            e.spec_last = actual;
        } else {
            *e = StrideEntry {
                valid: true,
                pc,
                last: actual,
                spec_last: actual,
                stride: 0,
                conf: ConfidenceCounter::new(),
            };
        }
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ConfidenceConfig {
        ConfidenceConfig::hpca2005()
    }

    #[test]
    fn last_value_learns_constant() {
        let mut p = LastValuePredictor::new(64, cfg());
        for _ in 0..20 {
            p.train(0x10, 42);
        }
        let pred = p.predict(0x10);
        assert_eq!(pred.confident_value(), Some(42));
    }

    #[test]
    fn last_value_loses_confidence_on_churn() {
        let mut p = LastValuePredictor::new(64, cfg());
        for i in 0..50 {
            p.train(0x10, i); // value changes every time
        }
        assert_eq!(p.predict(0x10).confident_value(), None);
    }

    #[test]
    fn stride_learns_arithmetic_sequence() {
        let mut p = StridePredictor::new(64, cfg());
        for i in 0..30u64 {
            p.train(0x20, 1000 + i * 8);
        }
        let pred = p.predict(0x20);
        assert_eq!(pred.confident_value(), Some(1000 + 30 * 8));
    }

    #[test]
    fn stride_speculative_update_chains() {
        let mut p = StridePredictor::new(64, cfg());
        for i in 0..30u64 {
            p.train(0x20, i * 8);
        }
        // Two predictions before any commit: the second builds on the first.
        let v1 = p.predict(0x20).confident_value().unwrap();
        p.spec_update(0x20, v1);
        let v2 = p.predict(0x20).confident_value().unwrap();
        assert_eq!(v2, v1 + 8);
        // Commit resynchronizes speculative state.
        p.train(0x20, v1);
        assert_eq!(p.predict(0x20).confident_value(), Some(v1 + 8));
    }

    #[test]
    fn unknown_pc_predicts_nothing() {
        let mut p = StridePredictor::new(64, cfg());
        assert_eq!(p.predict(0x999).primary, None);
        let mut q = LastValuePredictor::new(64, cfg());
        assert_eq!(q.predict(0x999).primary, None);
    }

    #[test]
    fn aliased_pcs_replace_entries() {
        let mut p = LastValuePredictor::new(4, cfg());
        for _ in 0..20 {
            p.train(0x0, 1);
        }
        p.train(0x4, 2); // same slot, different pc
        assert_eq!(p.predict(0x0).primary, None);
        assert!(p.predict(0x4).primary.is_some());
    }

    #[test]
    fn counters_accumulate() {
        let mut p = StridePredictor::new(64, cfg());
        for i in 0..30u64 {
            p.train(0x20, i);
        }
        let _ = p.predict(0x20);
        let c = p.counters();
        assert_eq!(c.trains, 30);
        assert_eq!(c.queries, 1);
        assert_eq!(c.confident, 1);
    }
}
