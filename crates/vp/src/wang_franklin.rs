//! The Wang–Franklin hybrid value predictor (§5.4; Wang & Franklin,
//! MICRO-30 1997), the paper's default realistic predictor.
//!
//! Two tables:
//! - the **VHT** (value history table), PC-indexed, holding per-load the
//!   five most recently *learned* values, a last-value + stride pair for
//!   the stride sub-predictor, and a pattern history of which candidate
//!   occurred recently;
//! - the **ValPHT** (value pattern history table), indexed by the pattern
//!   history (hashed with the PC), holding one confidence counter per
//!   candidate.
//!
//! The candidate set per prediction is: 5 learned values, the hardwired
//! constants 0 and 1, and `last + stride` — 8 candidates, so the pattern
//! history stores 3-bit candidate indices. With the paper's 4K-entry VHT
//! and 32K-entry ValPHT this is the "160 KB + 244 KB" configuration of
//! §5.4. The predictor naturally supports *multiple-value* prediction
//! (§5.6): every candidate whose counter is over threshold is reported.

use crate::confidence::{ConfidenceConfig, ConfidenceCounter};
use crate::{Predicted, Prediction, PredictorCounters, ValuePredictor};
use serde::{Deserialize, Serialize};

const NUM_LEARNED: usize = 5;
const NUM_CANDIDATES: usize = 8;
const CAND_ZERO: usize = 5;
const CAND_ONE: usize = 6;
const CAND_STRIDE: usize = 7;
/// Pattern history: 4 outcomes × 3 bits.
const PATTERN_BITS: u32 = 12;

/// Wang–Franklin predictor sizing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WangFranklinConfig {
    /// VHT entries (power of two). Paper: 4K.
    pub vht_entries: usize,
    /// ValPHT entries (power of two). Paper: 32K.
    pub valpht_entries: usize,
    /// Confidence parameters. Paper: +1/−8, threshold 12, max 32.
    pub confidence: ConfidenceConfig,
}

impl WangFranklinConfig {
    /// The paper's configuration (§5.4).
    pub fn hpca2005() -> Self {
        WangFranklinConfig {
            vht_entries: 4096,
            valpht_entries: 32 * 1024,
            confidence: ConfidenceConfig::hpca2005(),
        }
    }

    /// The "more liberal predictor" used for multiple-value MTVP (§5.6):
    /// gentler confidence updates so several values can be over threshold.
    pub fn liberal() -> Self {
        WangFranklinConfig {
            confidence: ConfidenceConfig::liberal(),
            ..Self::hpca2005()
        }
    }
}

#[derive(Clone, Debug, Default)]
struct VhtEntry {
    valid: bool,
    pc: u64,
    values: [u64; NUM_LEARNED],
    /// Round-robin replacement cursor for `values`.
    vcursor: u8,
    last: u64,
    spec_last: u64,
    stride: i64,
    pending_delta: i64,
    pattern: u16,
}

type ValPhtEntry = [ConfidenceCounter; NUM_CANDIDATES];

/// The Wang–Franklin hybrid predictor.
#[derive(Clone, Debug)]
pub struct WangFranklinPredictor {
    cfg: WangFranklinConfig,
    vht: Vec<VhtEntry>,
    valpht: Vec<ValPhtEntry>,
    counters: PredictorCounters,
    multi_candidate_queries: u64,
}

impl WangFranklinPredictor {
    /// Create a predictor.
    ///
    /// # Panics
    /// Panics if table sizes are not powers of two.
    pub fn new(cfg: WangFranklinConfig) -> Self {
        assert!(
            cfg.vht_entries.is_power_of_two(),
            "VHT size must be a power of two"
        );
        assert!(
            cfg.valpht_entries.is_power_of_two(),
            "ValPHT size must be a power of two"
        );
        WangFranklinPredictor {
            vht: vec![VhtEntry::default(); cfg.vht_entries],
            valpht: vec![ValPhtEntry::default(); cfg.valpht_entries],
            cfg,
            counters: PredictorCounters::default(),
            multi_candidate_queries: 0,
        }
    }

    /// Queries for which more than one candidate was over threshold —
    /// the raw material of Fig. 5.
    pub fn multi_candidate_queries(&self) -> u64 {
        self.multi_candidate_queries
    }

    #[inline]
    fn vht_idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.vht_entries - 1)
    }

    #[inline]
    fn valpht_idx(&self, pc: u64, pattern: u16) -> usize {
        let h = (u64::from(pattern)) ^ (pc.wrapping_mul(0x9E37_79B9) & 0x7FFF);
        (h as usize) & (self.cfg.valpht_entries - 1)
    }

    fn candidates(e: &VhtEntry, speculative: bool) -> [u64; NUM_CANDIDATES] {
        let base = if speculative { e.spec_last } else { e.last };
        let mut c = [0u64; NUM_CANDIDATES];
        c[..NUM_LEARNED].copy_from_slice(&e.values);
        c[CAND_ZERO] = 0;
        c[CAND_ONE] = 1;
        c[CAND_STRIDE] = base.wrapping_add(e.stride as u64);
        c
    }

    fn best_candidate(conf: &ValPhtEntry) -> usize {
        let mut best = 0;
        for i in 1..NUM_CANDIDATES {
            if conf[i].value() > conf[best].value() {
                best = i;
            }
        }
        best
    }
}

impl ValuePredictor for WangFranklinPredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.counters.queries += 1;
        let e = &self.vht[self.vht_idx(pc)];
        if !e.valid || e.pc != pc {
            return Prediction::none();
        }
        let cands = Self::candidates(e, true);
        let conf = &self.valpht[self.valpht_idx(pc, e.pattern)];
        let ccfg = &self.cfg.confidence;
        let best = Self::best_candidate(conf);
        let confident = conf[best].confident(ccfg);
        if confident {
            self.counters.confident += 1;
        }
        // Alternates: every other over-threshold candidate with a distinct
        // value, ordered by confidence.
        let mut alts: Vec<(u16, u64)> = (0..NUM_CANDIDATES)
            .filter(|&i| i != best && conf[i].confident(ccfg) && cands[i] != cands[best])
            .map(|i| (conf[i].value(), cands[i]))
            .collect();
        alts.sort_by_key(|a| std::cmp::Reverse(a.0));
        let mut seen = vec![cands[best]];
        let alternates: Vec<u64> = alts
            .into_iter()
            .filter_map(|(_, v)| {
                if seen.contains(&v) {
                    None
                } else {
                    seen.push(v);
                    Some(v)
                }
            })
            .collect();
        if confident && !alternates.is_empty() {
            self.multi_candidate_queries += 1;
        }
        Prediction {
            primary: Some(Predicted {
                value: cands[best],
                confident,
            }),
            alternates,
        }
    }

    fn spec_update(&mut self, pc: u64, value: u64) {
        let i = self.vht_idx(pc);
        let e = &mut self.vht[i];
        if e.valid && e.pc == pc {
            e.spec_last = value;
        }
    }

    fn train(&mut self, pc: u64, actual: u64) {
        self.counters.trains += 1;
        let i = self.vht_idx(pc);
        if !self.vht[i].valid || self.vht[i].pc != pc {
            let mut e = VhtEntry {
                valid: true,
                pc,
                last: actual,
                spec_last: actual,
                ..VhtEntry::default()
            };
            e.values[0] = actual;
            e.vcursor = 1;
            self.vht[i] = e;
            return;
        }

        // Evaluate against the candidates as they stood before this commit.
        let (pattern, cands) = {
            let e = &self.vht[i];
            (e.pattern, Self::candidates(e, false))
        };
        let vi = self.valpht_idx(pc, pattern);
        let ccfg = self.cfg.confidence;
        let best = Self::best_candidate(&self.valpht[vi]);
        let matched = (0..NUM_CANDIDATES).find(|&c| cands[c] == actual);

        {
            let conf = &mut self.valpht[vi];
            match matched {
                Some(m) => {
                    conf[m].reward(&ccfg);
                    if cands[best] != actual {
                        conf[best].penalize(&ccfg);
                    }
                }
                None => conf[best].penalize(&ccfg),
            }
        }

        // Update the VHT entry: learned-value replacement, 2-delta stride,
        // pattern history, last values.
        let e = &mut self.vht[i];
        let outcome_idx = match matched {
            Some(m) => m,
            None => {
                // Learn the new value round-robin; its per-pattern
                // confidence starts from whatever the slot had (hardware
                // does not clear the ValPHT on replacement).
                let slot = e.vcursor as usize;
                e.values[slot] = actual;
                e.vcursor = (e.vcursor + 1) % NUM_LEARNED as u8;
                slot
            }
        };
        let delta = actual.wrapping_sub(e.last) as i64;
        if delta == e.pending_delta {
            e.stride = delta;
        }
        e.pending_delta = delta;
        e.last = actual;
        e.spec_last = actual;
        e.pattern = ((e.pattern << 3) | outcome_idx as u16) & ((1 << PATTERN_BITS) - 1);
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf() -> WangFranklinPredictor {
        WangFranklinPredictor::new(WangFranklinConfig {
            vht_entries: 256,
            valpht_entries: 4096,
            confidence: ConfidenceConfig::hpca2005(),
        })
    }

    #[test]
    fn constant_value_reaches_confidence() {
        let mut p = wf();
        for _ in 0..40 {
            p.train(0x10, 42);
        }
        assert_eq!(p.predict(0x10).confident_value(), Some(42));
    }

    #[test]
    fn zero_constant_is_hardwired() {
        let mut p = wf();
        for _ in 0..40 {
            p.train(0x14, 0);
        }
        assert_eq!(p.predict(0x14).confident_value(), Some(0));
    }

    #[test]
    fn stride_candidate_tracks_arithmetic_sequences() {
        let mut p = wf();
        for i in 0..60u64 {
            p.train(0x18, 1000 + i * 8);
        }
        assert_eq!(p.predict(0x18).confident_value(), Some(1000 + 60 * 8));
    }

    #[test]
    fn alternating_values_learned_via_pattern_history() {
        let mut p = wf();
        let seq = [7u64, 9];
        let mut hits = 0;
        let mut total = 0;
        for rep in 0..400usize {
            let v = seq[rep % 2];
            if rep > 200 {
                total += 1;
                if p.predict(0x20).confident_value() == Some(v) {
                    hits += 1;
                }
            }
            p.train(0x20, v);
        }
        assert!(hits * 10 >= total * 9, "{hits}/{total}");
    }

    #[test]
    fn multi_value_alternates_with_liberal_confidence() {
        let mut p = WangFranklinPredictor::new(WangFranklinConfig {
            vht_entries: 256,
            valpht_entries: 4096,
            ..WangFranklinConfig::liberal()
        });
        // A biased random mix (2/3 value 5, 1/3 value 11) creates contexts
        // whose successor is genuinely ambiguous: the majority value stays
        // "best" while the minority value is rewarded without ever being
        // the penalized best — so both end up over threshold.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1234);
        let mut both_seen = false;
        for _ in 0..2000usize {
            let pred = p.predict(0x24);
            if let Some(primary) = pred.primary {
                let all: Vec<u64> = std::iter::once(primary.value)
                    .chain(pred.alternates.iter().copied())
                    .collect();
                if primary.confident && all.contains(&5) && all.contains(&11) {
                    both_seen = true;
                }
            }
            let v = if rng.gen_range(0..3) == 0 { 11u64 } else { 5 };
            p.train(0x24, v);
        }
        assert!(
            both_seen,
            "no query ever exposed both hot values over threshold"
        );
        assert!(p.multi_candidate_queries() > 0);
    }

    #[test]
    fn mispredictions_drop_confidence_fast() {
        let mut p = wf();
        for _ in 0..40 {
            p.train(0x28, 1234);
        }
        assert!(p.predict(0x28).confident_value().is_some());
        // Three surprise values in a row: -8 each wipes out confidence.
        for v in [1u64, 2, 3] {
            p.train(0x28, 0xF000 + v);
        }
        assert_eq!(p.predict(0x28).confident_value(), None);
    }

    #[test]
    fn unknown_pc_predicts_nothing() {
        let mut p = wf();
        assert_eq!(p.predict(0xFFF0).primary, None);
    }

    #[test]
    fn learned_set_replacement_is_round_robin() {
        let mut p = wf();
        // Feed 6 distinct repeated values; the 6th must evict slot 0.
        for v in 100..106u64 {
            for _ in 0..3 {
                p.train(0x2C, v);
            }
        }
        // All recent values are still learnable; no panic and predictions exist.
        assert!(p.predict(0x2C).primary.is_some());
    }

    #[test]
    fn spec_update_chains_stride_candidate() {
        let mut p = wf();
        for i in 0..60u64 {
            p.train(0x30, i * 8);
        }
        let v1 = p.predict(0x30).confident_value().unwrap();
        p.spec_update(0x30, v1);
        let v2 = p.predict(0x30).confident_value().unwrap();
        assert_eq!(v2, v1 + 8);
    }

    #[test]
    fn counters_report_queries() {
        let mut p = wf();
        for _ in 0..20 {
            p.train(0x34, 9);
        }
        let _ = p.predict(0x34);
        let _ = p.predict(0x9999);
        let c = p.counters();
        assert_eq!(c.queries, 2);
        assert_eq!(c.trains, 20);
        assert_eq!(c.confident, 1);
    }
}
