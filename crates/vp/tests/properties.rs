//! Property-based tests of the value predictors.

use mtvp_vp::{
    ConfidenceConfig, ConfidenceCounter, DfcmConfig, DfcmPredictor, StridePredictor,
    ValuePredictor, WangFranklinConfig, WangFranklinPredictor,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn stride_predictor_learns_any_affine_sequence(start: u64, stride in -1000i64..1000) {
        prop_assume!(stride != 0);
        let mut p = StridePredictor::new(64, ConfidenceConfig::hpca2005());
        let mut v = start;
        for _ in 0..30 {
            p.train(0x10, v);
            v = v.wrapping_add(stride as u64);
        }
        prop_assert_eq!(p.predict(0x10).confident_value(), Some(v));
    }

    #[test]
    fn wang_franklin_learns_any_constant(pc in 0u64..100_000, value: u64) {
        let mut p = WangFranklinPredictor::new(WangFranklinConfig::hpca2005());
        for _ in 0..30 {
            p.train(pc, value);
        }
        prop_assert_eq!(p.predict(pc).confident_value(), Some(value));
    }

    #[test]
    fn dfcm_learns_any_affine_sequence(start: u64, stride in -512i64..512) {
        let mut p = DfcmPredictor::new(DfcmConfig::hpca2005());
        let mut v = start;
        for _ in 0..40 {
            p.train(0x20, v);
            v = v.wrapping_add(stride as u64);
        }
        prop_assert_eq!(p.predict(0x20).confident_value(), Some(v));
    }

    #[test]
    fn confidence_counter_stays_bounded(ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let cfg = ConfidenceConfig::hpca2005();
        let mut c = ConfidenceCounter::new();
        for correct in ops {
            if correct { c.reward(&cfg) } else { c.penalize(&cfg) }
            prop_assert!(c.value() <= cfg.max);
        }
    }

    #[test]
    fn prediction_is_pure_between_trains(pc in 0u64..4096, values in prop::collection::vec(any::<u64>(), 1..50)) {
        // predict() must not change what the next predict() returns.
        let mut p = WangFranklinPredictor::new(WangFranklinConfig::hpca2005());
        for v in &values {
            p.train(pc, *v);
        }
        let a = p.predict(pc);
        let b = p.predict(pc);
        prop_assert_eq!(a, b);
    }
}
