//! Classic standalone kernels, independent of the calibrated record-walk
//! template. These are not part of the figure suite; they exist for
//! examples, tutorials, and as additional differential-test fodder with
//! very different control/dataflow shapes (nested loops, reductions,
//! data-dependent inner trip counts).

use mtvp_isa::{FReg, Program, ProgramBuilder, Reg};

/// Dense `n × n` matrix multiply (f64, naive triple loop).
///
/// # Panics
/// Panics if `n == 0` or `n > 64` (keeps programs test-sized).
pub fn matmul(n: u64) -> Program {
    assert!(n > 0 && n <= 64, "matmul size out of range");
    let mut b = ProgramBuilder::new();
    b.name(format!("matmul-{n}"));
    let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 + 0.5).collect();
    let bb: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 1.5).collect();
    let a_base = b.alloc_f64(&a);
    let b_base = b.alloc_f64(&bb);
    let c_base = b.reserve(8 * n * n);

    let (ra, rb, rc, ri, rj, rk, rn) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6), Reg(7));
    let (t1, t2) = (Reg(8), Reg(9));
    let (fa, fb, facc) = (FReg(1), FReg(2), FReg(3));
    b.li(ra, a_base as i64)
        .li(rb, b_base as i64)
        .li(rc, c_base as i64)
        .li(rn, n as i64);
    b.li(ri, 0);
    let li = b.here_label();
    b.li(rj, 0);
    let lj = b.here_label();
    b.li(rk, 0);
    b.icvtf(facc, Reg(0)); // facc = 0.0 without reading facc
    let lk = b.here_label();
    // fa = A[i*n+k]
    b.mul(t1, ri, rn);
    b.add(t1, t1, rk);
    b.slli(t1, t1, 3);
    b.add(t1, t1, ra);
    b.fld(fa, t1, 0);
    // fb = B[k*n+j]
    b.mul(t2, rk, rn);
    b.add(t2, t2, rj);
    b.slli(t2, t2, 3);
    b.add(t2, t2, rb);
    b.fld(fb, t2, 0);
    b.fmadd(facc, fa, fb);
    b.addi(rk, rk, 1);
    b.blt(rk, rn, lk);
    // C[i*n+j] = facc
    b.mul(t1, ri, rn);
    b.add(t1, t1, rj);
    b.slli(t1, t1, 3);
    b.add(t1, t1, rc);
    b.fst(facc, t1, 0);
    b.addi(rj, rj, 1);
    b.blt(rj, rn, lj);
    b.addi(ri, ri, 1);
    b.blt(ri, rn, li);
    b.halt();
    b.build()
}

/// Histogram of `values.len()` bytes into 256 buckets — scattered
/// read-modify-write traffic with frequent same-address collisions.
pub fn histogram(values: &[u8]) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("histogram");
    let words: Vec<u64> = values.iter().map(|v| u64::from(*v)).collect();
    let data = b.alloc_u64(&words);
    let buckets = b.reserve(8 * 256);
    let (rd, rbk, ri, rn, t, v) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(rd, data as i64)
        .li(rbk, buckets as i64)
        .li(ri, 0)
        .li(rn, words.len() as i64);
    let top = b.here_label();
    b.slli(t, ri, 3);
    b.add(t, t, rd);
    b.ld(v, t, 0); // the byte value
    b.slli(v, v, 3);
    b.add(v, v, rbk);
    b.ld(t, v, 0); // bucket count
    b.addi(t, t, 1);
    b.st(t, v, 0); // read-modify-write
    b.addi(ri, ri, 1);
    b.blt(ri, rn, top);
    b.halt();
    b.build()
}

/// Count occurrences of `needle` in `haystack` (byte values stored one per
/// word) — data-dependent inner loop with early exits.
pub fn string_search(haystack: &[u8], needle: &[u8]) -> Program {
    assert!(!needle.is_empty() && needle.len() <= haystack.len());
    let mut b = ProgramBuilder::new();
    b.name("string-search");
    let h: Vec<u64> = haystack.iter().map(|c| u64::from(*c)).collect();
    let nd: Vec<u64> = needle.iter().map(|c| u64::from(*c)).collect();
    let h_base = b.alloc_u64(&h);
    let n_base = b.alloc_u64(&nd);
    let (rh, rn, ri, rj, hl, nl, t1, t2, cnt) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(9),
    );
    b.li(rh, h_base as i64).li(rn, n_base as i64);
    b.li(hl, (h.len() - nd.len() + 1) as i64);
    b.li(nl, nd.len() as i64);
    b.li(ri, 0).li(cnt, 0);
    let outer = b.here_label();
    b.li(rj, 0);
    let inner = b.label();
    let mismatch = b.label();
    b.bind(inner);
    // t1 = haystack[i + j]
    b.add(t1, ri, rj);
    b.slli(t1, t1, 3);
    b.add(t1, t1, rh);
    b.ld(t1, t1, 0);
    // t2 = needle[j]
    b.slli(t2, rj, 3);
    b.add(t2, t2, rn);
    b.ld(t2, t2, 0);
    b.bne(t1, t2, mismatch);
    b.addi(rj, rj, 1);
    b.blt(rj, nl, inner);
    b.addi(cnt, cnt, 1);
    b.bind(mismatch);
    b.addi(ri, ri, 1);
    b.blt(ri, hl, outer);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::interp::{Bus, Interp, SimpleBus};
    use mtvp_isa::DATA_BASE;

    #[test]
    fn matmul_matches_reference() {
        let n = 6u64;
        let p = matmul(n);
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 10_000_000);
        assert!(res.halted);
        // Recompute in Rust and compare C.
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 + 0.5).collect();
        let b_: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 1.5).collect();
        let c_base = DATA_BASE + 8 * n * n + 8 * n * n;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a[(i * n + k) as usize] * b_[(k * n + j) as usize];
                }
                let got = f64::from_bits(bus.read_u64(c_base + 8 * (i * n + j)));
                assert!((got - acc).abs() < 1e-9, "C[{i}][{j}] = {got}, want {acc}");
            }
        }
    }

    #[test]
    fn histogram_counts_bytes() {
        let values: Vec<u8> = (0..500).map(|i| (i * 37 % 256) as u8).collect();
        let p = histogram(&values);
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 10_000_000);
        assert!(res.halted);
        let buckets_base = DATA_BASE + 8 * values.len() as u64;
        let mut expect = [0u64; 256];
        for v in &values {
            expect[*v as usize] += 1;
        }
        for (i, e) in expect.iter().enumerate() {
            let got = bus.read_u64(buckets_base + 8 * i as u64);
            assert_eq!(got, *e, "bucket {i}");
        }
    }

    #[test]
    fn string_search_counts_matches() {
        let hay = b"abracadabra-abracadabra";
        let p = string_search(hay, b"abra");
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 10_000_000);
        assert!(res.halted);
        assert_eq!(res.int_regs[9], 4, "abra occurs 4 times");
    }

    #[test]
    fn string_search_no_match() {
        let p = string_search(b"aaaaaaa", b"xyz");
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 10_000_000);
        assert_eq!(res.int_regs[9], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn matmul_rejects_huge_sizes() {
        let _ = matmul(65);
    }
}
