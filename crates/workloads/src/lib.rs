//! # mtvp-workloads
//!
//! Synthetic SPEC CPU2000-like benchmark kernels for the MTVP simulator,
//! plus a random-program generator for differential testing.
//!
//! We cannot ship SPEC binaries, so each benchmark the paper reports is
//! replaced by a kernel engineered to sit in the same region of the
//! four-dimensional behaviour space that drives every result in the paper:
//!
//! 1. **long-latency loads** — scattered cold records that miss the whole
//!    hierarchy (and defeat the stride prefetcher, whose address streams
//!    they randomize);
//! 2. **value locality on those loads** — each record carries a small
//!    "class" value; the *sequence* of classes observed by the load PC is
//!    periodic (or biased-random for the multiple-value candidates), which
//!    is exactly what the Wang–Franklin pattern table can and cannot learn;
//! 3. **dependence structure** — integer kernels compute the *next* record
//!    address from the loaded class (pointer-chase-like: a wide window
//!    cannot run ahead, value prediction can); floating-point kernels use
//!    the class only in the data computation (abundant independent
//!    parallelism: a wide window helps, classic STVP commit-stalls);
//! 4. **store density** — bounds how far a speculative thread can run
//!    before its store buffer fills (§5.3).
//!
//! # Example
//!
//! ```
//! use mtvp_workloads::{suite, Scale, Suite};
//!
//! let mcf = suite().into_iter().find(|w| w.name == "mcf").unwrap();
//! let program = mcf.build(Scale::Tiny);
//! assert!(program.len() > 10);
//! assert_eq!(mcf.suite, Suite::Int);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod registry;
pub mod synth;
mod walk;

pub use registry::{suite, Suite, Workload};
pub use walk::{build_walk, BranchStyle, ClassPattern, WalkParams};

/// How big to build a kernel.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scale {
    /// A few thousand dynamic instructions — unit tests.
    Tiny,
    /// Tens of thousands — criterion benches and integration tests.
    Small,
    /// Hundreds of thousands — the figure-reproduction harness.
    Full,
}

impl Scale {
    /// Multiplier applied to iteration counts.
    pub fn iter_factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 8,
            Scale::Full => 64,
        }
    }

    /// Multiplier applied to memory footprints.
    pub fn footprint_factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Full => 16,
        }
    }
}
