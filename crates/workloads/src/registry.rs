//! The SPEC CPU2000-like benchmark registry.
//!
//! Names (and the multiple-input variants like `gcc 1`/`gcc i` or
//! `art 1`/`art 4`) mirror the benchmark list of the paper's figures. Each
//! entry's parameters place it in the behaviour regime its namesake is
//! known for — see the per-entry descriptions. Three regimes matter:
//!
//! - **cold dependent walkers** (`mcf`, `vpr`, `twolf`, …): scattered
//!   records that miss to memory, whose class values are constant or
//!   slowly-varying (high value locality) and whose *next address* depends
//!   on the loaded class. These are where threaded value prediction
//!   shines and wide windows do not.
//! - **hot core-bound kernels** (`crafty`, `gzip`, `mesa`, `lucas`, …):
//!   fixed small footprints that become cache-resident, so value
//!   prediction has little latency to hide (and ILP-pred must learn to
//!   leave them alone).
//! - **FP streamers** (`mgrid`, `applu`, `wupwise`, …): prefetch-friendly
//!   array traffic plus scattered coefficient records; lots of independent
//!   parallelism, so classic single-threaded VP stalls on commit while
//!   MTVP (and wide windows) profit.
//!
//! `parser` and `swim` carry biased two-valued loads — the §5.6
//! multiple-value-prediction candidates: a conservative predictor cannot
//! stay confident on them, a liberal one keeps *both* values over
//! threshold.

use crate::walk::{build_walk, BranchStyle, ClassPattern, WalkParams};
use crate::Scale;
use mtvp_isa::Program;

/// Which SPEC suite a workload models.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000 integer.
    Int,
    /// SPEC CPU2000 floating point.
    Fp,
}

/// One synthetic benchmark.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// What behaviour regime this kernel models.
    pub description: &'static str,
    /// Template parameters.
    pub params: WalkParams,
}

impl Workload {
    /// Build the kernel program at the given scale.
    pub fn build(&self, scale: Scale) -> Program {
        build_walk(self.name, &self.params, scale)
    }
}

fn w(name: &'static str, suite: Suite, description: &'static str, params: WalkParams) -> Workload {
    Workload {
        name,
        suite,
        description,
        params,
    }
}

/// Cold dependent walker (the MTVP-friendly regime).
fn cold_int() -> WalkParams {
    WalkParams {
        records_log2: 14,
        iters: 45,
        pattern: ClassPattern::Constant(3),
        addr_dep: true,
        alu_work: 48,
        fp_work: 0,
        stream_words: 0,
        noise_loads: 2,
        stores: 2,
        branchy: BranchStyle::OnClass,
        scale_footprint: true,
        stream_arena_log2: 12,
        warm_records: false,
    }
}

/// Hot, core-bound kernel (fixed small footprint).
fn hot_int() -> WalkParams {
    WalkParams {
        records_log2: 6,
        iters: 200,
        pattern: ClassPattern::Constant(5),
        addr_dep: false,
        alu_work: 14,
        fp_work: 0,
        stream_words: 0,
        noise_loads: 0,
        stores: 1,
        branchy: BranchStyle::OnClass,
        scale_footprint: false,
        stream_arena_log2: 9,
        warm_records: false,
    }
}

/// FP streamer with scattered coefficient records.
fn fp_stream() -> WalkParams {
    WalkParams {
        records_log2: 13,
        iters: 50,
        pattern: ClassPattern::Constant(5),
        addr_dep: false,
        alu_work: 2,
        fp_work: 8,
        stream_words: 8,
        noise_loads: 0,
        stores: 2,
        branchy: BranchStyle::None,
        scale_footprint: true,
        stream_arena_log2: 17,
        warm_records: false,
    }
}

/// The full benchmark suite in the paper's figure order (integer first).
#[allow(clippy::vec_init_then_push)] // one entry per benchmark, each a sizeable block
pub fn suite() -> Vec<Workload> {
    use BranchStyle::*;
    use ClassPattern::*;
    let mut v = Vec::new();

    // ---- SPEC INT ----
    v.push(w(
        "gzip g",
        Suite::Int,
        "compression: hot window, modest gains",
        WalkParams {
            records_log2: 6,
            iters: 220,
            noise_loads: 1,
            alu_work: 10,
            pattern: Constant(7),
            scale_footprint: false,
            ..hot_int()
        },
    ));
    v.push(w(
        "gzip r",
        Suite::Int,
        "compression, alternate input: L2-resident window walk",
        WalkParams {
            records_log2: 12,
            iters: 110,
            noise_loads: 1,
            alu_work: 10,
            addr_dep: true,
            pattern: Constant(7),
            scale_footprint: false,
            ..hot_int()
        },
    ));
    v.push(w(
        "vpr r",
        Suite::Int,
        "place&route: large dependent chase, high locality",
        WalkParams {
            records_log2: 15,
            iters: 50,
            alu_work: 32,
            noise_loads: 0,
            stores: 1,
            pattern: Constant(3),
            ..cold_int()
        },
    ));
    v.push(w(
        "gcc 1",
        Suite::Int,
        "compiler: branchy, L2-resident walk (128KB)",
        WalkParams {
            records_log2: 11,
            iters: 150,
            alu_work: 12,
            noise_loads: 1,
            pattern: BiasedRandom {
                values: (5, 13),
                bias_percent: 92,
                seed: 11,
            },
            branchy: OnClass,
            scale_footprint: false,
            warm_records: false,
            ..cold_int()
        },
    ));
    v.push(w(
        "gcc e",
        Suite::Int,
        "compiler: unpredictable branches dominate",
        WalkParams {
            records_log2: 10,
            iters: 80,
            alu_work: 12,
            noise_loads: 1,
            pattern: Periodic(vec![3, 5, 7, 9]),
            branchy: OnNoise,
            ..cold_int()
        },
    ));
    v.push(w(
        "gcc 2",
        Suite::Int,
        "compiler: larger working set, L3-resident (512KB)",
        WalkParams {
            records_log2: 13,
            iters: 130,
            alu_work: 16,
            noise_loads: 2,
            pattern: BiasedRandom {
                values: (5, 9),
                bias_percent: 90,
                seed: 12,
            },
            scale_footprint: false,
            warm_records: false,
            ..cold_int()
        },
    ));
    v.push(w(
        "gcc i",
        Suite::Int,
        "compiler: hot loop variant, noisy branches",
        WalkParams {
            records_log2: 7,
            iters: 110,
            alu_work: 12,
            noise_loads: 0,
            pattern: Periodic(vec![5, 9]),
            branchy: OnNoise,
            ..hot_int()
        },
    ));
    v.push(w(
        "mcf",
        Suite::Int,
        "network simplex: huge dependent chase, constant arc fields",
        WalkParams {
            records_log2: 15,
            iters: 50,
            alu_work: 40,
            noise_loads: 0,
            stores: 2,
            pattern: Constant(3),
            ..cold_int()
        },
    ));
    v.push(w(
        "crafty",
        Suite::Int,
        "chess: core-bound, unpredictable branches",
        WalkParams {
            records_log2: 6,
            iters: 120,
            alu_work: 16,
            branchy: OnNoise,
            ..hot_int()
        },
    ));
    v.push(w(
        "parser",
        Suite::Int,
        "NL parser: biased two-valued loads (multi-value candidate)",
        WalkParams {
            records_log2: 13,
            iters: 55,
            alu_work: 32,
            noise_loads: 0,
            stores: 1,
            pattern: BiasedRandom {
                values: (3, 9),
                bias_percent: 88,
                seed: 1001,
            },
            ..cold_int()
        },
    ));
    v.push(w(
        "eon r",
        Suite::Int,
        "raytracer: hot int/fp mix",
        WalkParams {
            records_log2: 7,
            iters: 100,
            alu_work: 8,
            fp_work: 6,
            stream_words: 4,
            ..hot_int()
        },
    ));
    v.push(w(
        "perlbmk",
        Suite::Int,
        "interpreter: L2-resident dispatch-table walk (256KB)",
        WalkParams {
            records_log2: 12,
            iters: 150,
            alu_work: 10,
            noise_loads: 1,
            pattern: BiasedRandom {
                values: (7, 3),
                bias_percent: 93,
                seed: 13,
            },
            scale_footprint: false,
            warm_records: false,
            ..cold_int()
        },
    ));
    v.push(w(
        "gap",
        Suite::Int,
        "group theory: L3-resident dependent walk (512KB)",
        WalkParams {
            records_log2: 13,
            iters: 100,
            alu_work: 24,
            noise_loads: 1,
            pattern: BiasedRandom {
                values: (5, 7),
                bias_percent: 94,
                seed: 14,
            },
            scale_footprint: false,
            warm_records: false,
            ..cold_int()
        },
    ));
    v.push(w(
        "vortex",
        Suite::Int,
        "OO database: L2-resident object store, scattered noise",
        WalkParams {
            records_log2: 12,
            iters: 140,
            scale_footprint: false,
            warm_records: false,
            alu_work: 8,
            noise_loads: 3,
            pattern: BiasedRandom {
                values: (3, 9),
                bias_percent: 91,
                seed: 15,
            },
            ..cold_int()
        },
    ));
    v.push(w(
        "bzip g",
        Suite::Int,
        "compression: L2/L3 block-sorting walk",
        WalkParams {
            records_log2: 13,
            iters: 100,
            alu_work: 18,
            noise_loads: 1,
            addr_dep: true,
            pattern: Constant(9),
            scale_footprint: false,
            ..hot_int()
        },
    ));
    v.push(w(
        "bzip p",
        Suite::Int,
        "compression, larger input: L3-resident walk (1MB)",
        WalkParams {
            records_log2: 14,
            iters: 80,
            alu_work: 28,
            noise_loads: 2,
            pattern: BiasedRandom {
                values: (7, 5),
                bias_percent: 92,
                seed: 16,
            },
            scale_footprint: false,
            warm_records: false,
            ..cold_int()
        },
    ));
    v.push(w(
        "twolf",
        Suite::Int,
        "place&route: large dependent chase",
        WalkParams {
            records_log2: 15,
            iters: 50,
            alu_work: 36,
            noise_loads: 0,
            stores: 1,
            pattern: Constant(5),
            ..cold_int()
        },
    ));

    // ---- SPEC FP ----
    v.push(w(
        "wupwise",
        Suite::Fp,
        "QCD: streams + slowly-varying coefficient records",
        WalkParams {
            records_log2: 14,
            stream_words: 8,
            fp_work: 8,
            pattern: BiasedRandom {
                values: (5, 3),
                bias_percent: 96,
                seed: 21,
            },
            ..fp_stream()
        },
    ));
    v.push(w(
        "swim",
        Suite::Fp,
        "shallow water: biased two-valued coefficients (multi-value star)",
        WalkParams {
            records_log2: 14,
            iters: 60,
            stream_words: 8,
            fp_work: 6,
            pattern: BiasedRandom {
                values: (5, 11),
                bias_percent: 86,
                seed: 2002,
            },
            ..fp_stream()
        },
    ));
    v.push(w(
        "mgrid",
        Suite::Fp,
        "multigrid: streams + constant coefficients",
        WalkParams {
            records_log2: 15,
            stream_words: 16,
            fp_work: 4,
            ..fp_stream()
        },
    ));
    v.push(w(
        "applu",
        Suite::Fp,
        "PDE solver: streams + coefficients, denser stores",
        WalkParams {
            records_log2: 14,
            stream_words: 8,
            fp_work: 8,
            stores: 3,
            ..fp_stream()
        },
    ));
    v.push(w(
        "mesa",
        Suite::Fp,
        "3D graphics: compute-bound, hot footprint",
        WalkParams {
            records_log2: 7,
            iters: 90,
            stream_words: 4,
            fp_work: 12,
            scale_footprint: false,
            stream_arena_log2: 9,
            ..fp_stream()
        },
    ));
    v.push(w(
        "galgel",
        Suite::Fp,
        "fluid dynamics: streams + scattered noise",
        WalkParams {
            records_log2: 14,
            stream_words: 8,
            fp_work: 6,
            noise_loads: 1,
            ..fp_stream()
        },
    ));
    v.push(w(
        "art 1",
        Suite::Fp,
        "neural net: scans with many independent misses",
        WalkParams {
            records_log2: 14,
            iters: 60,
            stream_words: 4,
            fp_work: 6,
            noise_loads: 2,
            ..fp_stream()
        },
    ));
    v.push(w(
        "art 4",
        Suite::Fp,
        "neural net, alternate input",
        WalkParams {
            records_log2: 14,
            iters: 60,
            stream_words: 4,
            fp_work: 6,
            noise_loads: 1,
            ..fp_stream()
        },
    ));
    v.push(w(
        "equake",
        Suite::Fp,
        "FEM: sparse dependent addressing, L3-resident (512KB)",
        WalkParams {
            records_log2: 13,
            iters: 90,
            scale_footprint: false,
            warm_records: false,
            addr_dep: true,
            alu_work: 6,
            stream_words: 4,
            fp_work: 6,
            pattern: BiasedRandom {
                values: (3, 5),
                bias_percent: 93,
                seed: 23,
            },
            ..fp_stream()
        },
    ));
    v.push(w(
        "facerec",
        Suite::Fp,
        "face recognition: streams + coefficients",
        WalkParams {
            records_log2: 14,
            stream_words: 8,
            fp_work: 6,
            pattern: BiasedRandom {
                values: (5, 9),
                bias_percent: 95,
                seed: 22,
            },
            ..fp_stream()
        },
    ));
    v.push(w(
        "ammp",
        Suite::Fp,
        "molecular dynamics: chase-like neighbour lists (1MB)",
        WalkParams {
            records_log2: 14,
            iters: 80,
            scale_footprint: false,
            warm_records: false,
            addr_dep: true,
            alu_work: 6,
            stream_words: 4,
            fp_work: 8,
            pattern: BiasedRandom {
                values: (7, 3),
                bias_percent: 94,
                seed: 24,
            },
            ..fp_stream()
        },
    ));
    v.push(w(
        "lucas",
        Suite::Fp,
        "primality: compute-bound, tiny footprint",
        WalkParams {
            records_log2: 6,
            iters: 90,
            stream_words: 4,
            fp_work: 14,
            scale_footprint: false,
            stream_arena_log2: 9,
            ..fp_stream()
        },
    ));
    v.push(w(
        "fma3d",
        Suite::Fp,
        "crash simulation: wide streams, periodic element classes",
        WalkParams {
            records_log2: 14,
            iters: 45,
            stream_words: 16,
            fp_work: 6,
            stores: 3,
            pattern: Constant(7),
            ..fp_stream()
        },
    ));
    v.push(w(
        "sixtrack",
        Suite::Fp,
        "accelerator physics: compute-bound",
        WalkParams {
            records_log2: 7,
            iters: 90,
            stream_words: 4,
            fp_work: 14,
            scale_footprint: false,
            stream_arena_log2: 9,
            ..fp_stream()
        },
    ));
    v.push(w(
        "apsi",
        Suite::Fp,
        "meteorology: mixed streams and scattered records",
        WalkParams {
            records_log2: 14,
            iters: 55,
            stream_words: 4,
            fp_work: 10,
            stores: 3,
            noise_loads: 1,
            pattern: Constant(3),
            ..fp_stream()
        },
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::interp::{Interp, SimpleBus};

    #[test]
    fn suite_has_paper_benchmarks() {
        let s = suite();
        assert_eq!(s.iter().filter(|w| w.suite == Suite::Int).count(), 17);
        assert_eq!(s.iter().filter(|w| w.suite == Suite::Fp).count(), 15);
        for name in ["mcf", "vpr r", "swim", "parser", "art 1", "twolf"] {
            assert!(s.iter().any(|w| w.name == name), "missing {name}");
        }
        // Names are unique.
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn every_kernel_halts_functionally() {
        for wl in suite() {
            let p = wl.build(Scale::Tiny);
            let mut bus = SimpleBus::new();
            let res = Interp::new(&p).run(&mut bus, 10_000_000);
            assert!(res.halted, "{} did not halt", wl.name);
            assert!(
                res.dyn_instrs > 500,
                "{} too short: {}",
                wl.name,
                res.dyn_instrs
            );
            assert!(
                res.loads > 0 && res.stores > 0,
                "{} has no memory traffic",
                wl.name
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for wl in suite().into_iter().take(4) {
            assert_eq!(wl.build(Scale::Tiny), wl.build(Scale::Tiny));
        }
    }

    #[test]
    fn hot_kernels_do_not_scale_footprint() {
        let s = suite();
        let crafty = s.iter().find(|w| w.name == "crafty").unwrap();
        assert_eq!(
            crafty.build(Scale::Tiny).data_bytes(),
            crafty.build(Scale::Full).data_bytes()
        );
        let mcf = s.iter().find(|w| w.name == "mcf").unwrap();
        assert!(mcf.build(Scale::Full).data_bytes() > mcf.build(Scale::Tiny).data_bytes());
    }
}
