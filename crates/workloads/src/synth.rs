//! Random-program generation for differential testing.
//!
//! Generates arbitrary — but always-terminating and 8-byte-aligned —
//! programs mixing ALU work, memory traffic, conditional forward skips
//! and a bounded outer loop. The cycle-level machine must produce exactly
//! the reference interpreter's architectural state on every one of them,
//! under every speculation mode.

use crate::Scale;
use mtvp_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated program.
#[derive(Copy, Clone, Debug)]
pub struct SynthParams {
    /// Outer-loop iterations (bounds dynamic length).
    pub iterations: u64,
    /// Random body operations per iteration.
    pub body_ops: usize,
    /// log2 of the data arena in 8-byte words.
    pub arena_words_log2: u32,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            iterations: 40,
            body_ops: 30,
            arena_words_log2: 10,
        }
    }
}

/// Generate a random program from `seed`.
///
/// The program is guaranteed to halt: the only backward branch is the
/// outer loop, bounded by a dedicated counter register that the random
/// body never touches. All memory accesses are 8-byte aligned within a
/// private arena.
pub fn random_program(seed: u64, p: SynthParams) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    b.name(format!("synth-{seed}"));

    let arena_words = 1u64 << p.arena_words_log2;
    let init: Vec<u64> = (0..arena_words).map(|_| rng.r#gen()).collect();
    let arena = b.alloc_u64(&init);

    // r1..r8: random working registers. r20: arena base. r21: loop counter.
    // r22: loop bound. r23: scratch address register.
    let work: Vec<Reg> = (1..=8).map(Reg).collect();
    let (base, cnt, bound, addr) = (Reg(20), Reg(21), Reg(22), Reg(23));
    let arena_mask = ((arena_words - 1) << 3) as i64 & !7;

    b.li(base, arena as i64);
    b.li(cnt, 0);
    b.li(bound, p.iterations as i64);
    for (k, r) in work.iter().enumerate() {
        b.li(*r, (seed as i64).wrapping_mul(k as i64 + 3) ^ 0x5A5A);
    }

    let top = b.here_label();
    let mut pending_skip: Option<(mtvp_isa::Label, usize)> = None;

    for op in 0..p.body_ops {
        // Close a pending forward skip once its window elapses.
        if let Some((label, end)) = pending_skip {
            if op >= end {
                b.bind(label);
                pending_skip = None;
            }
        }
        let rd = work[rng.gen_range(0..work.len())];
        let rs1 = work[rng.gen_range(0..work.len())];
        let rs2 = work[rng.gen_range(0..work.len())];
        match rng.gen_range(0..12u32) {
            0 => {
                b.add(rd, rs1, rs2);
            }
            1 => {
                b.sub(rd, rs1, rs2);
            }
            2 => {
                b.mul(rd, rs1, rs2);
            }
            3 => {
                b.xor(rd, rs1, rs2);
            }
            4 => {
                b.addi(rd, rs1, rng.gen_range(-100..100));
            }
            5 => {
                b.srli(rd, rs1, rng.gen_range(0..20));
            }
            6 => {
                b.slt(rd, rs1, rs2);
            }
            7 | 8 => {
                // Aligned load from the arena.
                b.andi(addr, rs1, arena_mask);
                b.add(addr, addr, base);
                b.ld(rd, addr, 0);
            }
            9 | 10 => {
                // Aligned store into the arena.
                b.andi(addr, rs1, arena_mask);
                b.add(addr, addr, base);
                b.st(rs2, addr, 0);
            }
            _ => {
                // Conditional forward skip (if none is pending).
                if pending_skip.is_none() && op + 2 < p.body_ops {
                    let label = b.label();
                    let window = rng.gen_range(1..=4usize);
                    b.beq(rs1, rs2, label);
                    pending_skip = Some((label, op + window));
                } else {
                    b.nop();
                }
            }
        }
    }
    if let Some((label, _)) = pending_skip {
        b.bind(label);
    }

    b.addi(cnt, cnt, 1);
    b.blt(cnt, bound, top);
    b.halt();
    b.build()
}

/// Shape of a phase-changing generated program (see [`phase_program`]).
#[derive(Copy, Clone, Debug)]
pub struct PhaseParams {
    /// Distinct behaviour phases, executed back to back.
    pub phases: usize,
    /// Outer-loop iterations per phase.
    pub iterations: u64,
    /// Random body operations per phase iteration.
    pub body_ops: usize,
    /// log2 of the data arena in 8-byte words.
    pub arena_words_log2: u32,
}

impl Default for PhaseParams {
    fn default() -> Self {
        PhaseParams {
            phases: 3,
            iterations: 30,
            body_ops: 24,
            arena_words_log2: 11,
        }
    }
}

impl PhaseParams {
    /// Default shape scaled to a workload [`Scale`] (iteration counts
    /// follow the registry kernels' scale factor).
    pub fn for_scale(scale: Scale) -> Self {
        PhaseParams {
            iterations: 30 * scale.iter_factor(),
            ..Self::default()
        }
    }
}

/// Generate a *phase-changing* random program from `seed`: several
/// back-to-back bounded loops, each with a distinct behaviour profile —
/// memory-bound (load-heavy), compute-bound (ALU-heavy), or store-heavy
/// — chosen pseudo-randomly per phase. Co-scheduling one of these next
/// to a measured workload exercises a shared cache under *time-varying*
/// pressure, which steady-state co-runners cannot.
///
/// The same halt guarantee as [`random_program`] holds: the only
/// backward branches are the per-phase loops, each bounded by a counter
/// the random body never touches, and all memory traffic stays 8-byte
/// aligned inside a private arena.
pub fn phase_program(seed: u64, p: PhaseParams) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut b = ProgramBuilder::new();
    b.name(format!("phases-{seed}"));

    let arena_words = 1u64 << p.arena_words_log2;
    let init: Vec<u64> = (0..arena_words).map(|_| rng.r#gen()).collect();
    let arena = b.alloc_u64(&init);

    let work: Vec<Reg> = (1..=8).map(Reg).collect();
    let (base, cnt, bound, addr) = (Reg(20), Reg(21), Reg(22), Reg(23));
    let arena_mask = ((arena_words - 1) << 3) as i64 & !7;

    b.li(base, arena as i64);
    for (k, r) in work.iter().enumerate() {
        b.li(*r, (seed as i64).wrapping_mul(k as i64 + 5) ^ 0x3C3C);
    }

    for phase in 0..p.phases {
        // Per-phase op-class weights: (alu, load, store), out of 12.
        let (alu_w, load_w) = match rng.gen_range(0..3u32) {
            0 => (3, 7), // memory-bound: mostly loads
            1 => (9, 2), // compute-bound: mostly ALU
            _ => (4, 3), // store-heavy: the rest of the weight is stores
        };
        // Phase-local stride perturbs which sets the phase leans on.
        let stride = (rng.gen_range(1..=64i64)) * 8;
        b.li(cnt, 0);
        b.li(bound, p.iterations as i64);
        let top = b.here_label();
        for _ in 0..p.body_ops {
            let rd = work[rng.gen_range(0..work.len())];
            let rs1 = work[rng.gen_range(0..work.len())];
            let rs2 = work[rng.gen_range(0..work.len())];
            let roll = rng.gen_range(0..12u32);
            if roll < alu_w {
                match roll % 4 {
                    0 => {
                        b.add(rd, rs1, rs2);
                    }
                    1 => {
                        b.mul(rd, rs1, rs2);
                    }
                    2 => {
                        b.xor(rd, rs1, rs2);
                    }
                    _ => {
                        b.addi(rd, rs1, rng.gen_range(-64..64));
                    }
                }
            } else if roll < alu_w + load_w {
                b.addi(addr, rs1, stride.wrapping_mul(i64::from(phase as u32 + 1)));
                b.andi(addr, addr, arena_mask);
                b.add(addr, addr, base);
                b.ld(rd, addr, 0);
            } else {
                b.andi(addr, rs1, arena_mask);
                b.add(addr, addr, base);
                b.st(rs2, addr, 0);
            }
        }
        b.addi(cnt, cnt, 1);
        b.blt(cnt, bound, top);
    }
    b.halt();
    b.build()
}

/// Check a co-workload specifier without building it: a registry
/// benchmark name, `synth:<seed>`, or `phases:<seed>`.
///
/// # Errors
/// Returns a message naming the offending spec.
pub fn validate_co_spec(spec: &str) -> Result<(), String> {
    let seed_of = |prefix: &str, s: &str| {
        s.parse::<u64>()
            .map(|_| ())
            .map_err(|_| format!("co-workload `{prefix}:{s}`: seed is not a number"))
    };
    if let Some(s) = spec.strip_prefix("synth:") {
        seed_of("synth", s)
    } else if let Some(s) = spec.strip_prefix("phases:") {
        seed_of("phases", s)
    } else if crate::suite().iter().any(|w| w.name == spec) {
        Ok(())
    } else {
        Err(format!(
            "unknown co-workload `{spec}` (expected a registry benchmark name, synth:<seed>, \
             or phases:<seed>)"
        ))
    }
}

/// Build the program a co-workload specifier names, at `scale`.
/// Synthetic specs scale their iteration counts with the registry
/// kernels' scale factor, so a mix's relative lengths are stable across
/// scales; generation is deterministic in (spec, scale).
///
/// # Errors
/// Returns a message naming the offending spec (same checks as
/// [`validate_co_spec`]).
pub fn build_co_workload(spec: &str, scale: Scale) -> Result<Program, String> {
    validate_co_spec(spec)?;
    if let Some(s) = spec.strip_prefix("synth:") {
        let seed: u64 = s.parse().expect("validated above");
        let params = SynthParams {
            iterations: 40 * scale.iter_factor(),
            ..SynthParams::default()
        };
        Ok(random_program(seed, params))
    } else if let Some(s) = spec.strip_prefix("phases:") {
        let seed: u64 = s.parse().expect("validated above");
        Ok(phase_program(seed, PhaseParams::for_scale(scale)))
    } else {
        let wl = crate::suite()
            .into_iter()
            .find(|w| w.name == spec)
            .expect("validated above");
        Ok(wl.build(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::interp::{Interp, SimpleBus};

    #[test]
    fn generated_programs_halt() {
        for seed in 0..20 {
            let p = random_program(seed, SynthParams::default());
            let mut bus = SimpleBus::new();
            let res = Interp::new(&p).run(&mut bus, 1_000_000);
            assert!(res.halted, "seed {seed} did not halt");
            assert!(res.dyn_instrs <= 1_000_000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(7, SynthParams::default());
        let b = random_program(7, SynthParams::default());
        assert_eq!(a, b);
        let c = random_program(8, SynthParams::default());
        assert_ne!(a, c);
    }

    #[test]
    fn memory_accesses_stay_aligned() {
        // Structural property: every ld/st base register is masked with ~7
        // two instructions earlier. Spot-check by running and ensuring the
        // interpreter's loads are all aligned (via a wrapper bus).
        struct AlignBus(SimpleBus);
        impl mtvp_isa::interp::Bus for AlignBus {
            fn read_u64(&mut self, addr: u64) -> u64 {
                assert_eq!(addr % 8, 0, "unaligned read at {addr:#x}");
                self.0.read_u64(addr)
            }
            fn write_u64(&mut self, addr: u64, val: u64) {
                assert_eq!(addr % 8, 0, "unaligned write at {addr:#x}");
                self.0.write_u64(addr, val)
            }
        }
        for seed in 0..10 {
            let p = random_program(seed, SynthParams::default());
            let mut bus = AlignBus(SimpleBus::new());
            let res = Interp::new(&p).run(&mut bus, 1_000_000);
            assert!(res.halted);
        }
    }

    #[test]
    fn phase_programs_halt_and_regenerate() {
        for seed in 0..10 {
            let p = phase_program(seed, PhaseParams::default());
            let mut bus = SimpleBus::new();
            let res = Interp::new(&p).run(&mut bus, 2_000_000);
            assert!(res.halted, "phases seed {seed} did not halt");
            assert_eq!(p, phase_program(seed, PhaseParams::default()));
        }
        assert_ne!(
            phase_program(1, PhaseParams::default()),
            phase_program(2, PhaseParams::default())
        );
    }

    #[test]
    fn co_workload_specs_resolve_and_reject() {
        assert!(validate_co_spec("mcf").is_ok());
        assert!(validate_co_spec("synth:3").is_ok());
        assert!(validate_co_spec("phases:12").is_ok());
        assert!(validate_co_spec("nonesuch").is_err());
        assert!(validate_co_spec("synth:xyz").is_err());
        assert!(validate_co_spec("phases:").is_err());

        let a = build_co_workload("phases:5", Scale::Tiny).unwrap();
        let b = build_co_workload("phases:5", Scale::Tiny).unwrap();
        assert_eq!(a, b, "co-workload builds are deterministic");
        let c = build_co_workload("phases:5", Scale::Small).unwrap();
        assert_ne!(a, c, "scale reaches the generated shape");
        assert!(build_co_workload("mcf", Scale::Tiny).unwrap().len() > 10);
        assert!(build_co_workload("nope", Scale::Tiny).is_err());
    }
}
