//! The record-walk kernel template behind every SPEC-like workload.
//!
//! Each iteration visits one 64-byte "record" in a large arena. The record
//! index is a multiplicative scramble of the iteration counter — and, for
//! pointer-chase-like kernels, of the *class value loaded from the previous
//! record*, which makes the address chain data-dependent exactly the way
//! mcf's arc walks are. Record class values are laid out at build time so
//! that the sequence the load PC observes follows a chosen [`ClassPattern`].
//!
//! The build-time layout simulates the same index recurrence the emitted
//! code executes, so the dynamic class sequence (including collisions,
//! which show up as occasional mispredictions — realistic) is fully
//! deterministic.

use crate::Scale;
use mtvp_isa::{FReg, Program, ProgramBuilder, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplicative scramble constant (Knuth).
const MULT: u64 = 2654435761;
/// Second scramble constant for the class feedback (must differ from
/// `MULT`, or periodic class patterns alias systematically).
const MULT2: u64 = 0x9E37_79B9_7F4A_7C15;

/// How the class value observed by the record load evolves over time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassPattern {
    /// Every record holds the same class (perfect last-value locality).
    Constant(u64),
    /// Classes repeat with a short period (Wang–Franklin pattern-table
    /// territory).
    Periodic(Vec<u64>),
    /// Two classes in random order with `bias_percent` favouring the
    /// first — the §5.6 multiple-value-prediction candidates: the primary
    /// prediction is wrong ~`100-bias` percent of the time while both
    /// values sit over threshold in a liberal predictor.
    BiasedRandom {
        /// The (majority, minority) class values.
        values: (u64, u64),
        /// Percentage of visits that observe the majority value.
        bias_percent: u8,
        /// RNG seed (layout is deterministic per seed).
        seed: u64,
    },
}

impl ClassPattern {
    fn value_at(&self, i: u64, rng: &mut SmallRng) -> u64 {
        match self {
            ClassPattern::Constant(v) => *v,
            ClassPattern::Periodic(vs) => vs[(i % vs.len() as u64) as usize],
            ClassPattern::BiasedRandom {
                values,
                bias_percent,
                ..
            } => {
                if rng.gen_range(0..100u8) < *bias_percent {
                    values.0
                } else {
                    values.1
                }
            }
        }
    }

    fn seed(&self) -> u64 {
        match self {
            ClassPattern::BiasedRandom { seed, .. } => *seed,
            _ => 0,
        }
    }
}

/// Branch flavour inside the loop body.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BranchStyle {
    /// No data-dependent branch.
    None,
    /// Branch on the class value: periodic, learnable by 2bcgskew.
    OnClass,
    /// Branch on scrambled noise: essentially random, mispredicts.
    OnNoise,
}

/// Parameters of a record-walk kernel. See the module docs.
#[derive(Clone, Debug)]
pub struct WalkParams {
    /// log2 of the number of 64-byte records at [`Scale::Tiny`].
    pub records_log2: u32,
    /// Iterations at [`Scale::Tiny`].
    pub iters: u64,
    /// Class-value behaviour of the record load.
    pub pattern: ClassPattern,
    /// Whether the next record index depends on the loaded class
    /// (integer/pointer-chase kernels: yes; FP kernels: no).
    pub addr_dep: bool,
    /// Dependent integer operations consuming the class per iteration.
    pub alu_work: u32,
    /// Floating-point operations per iteration (fed by the class through a
    /// conversion, but address-independent).
    pub fp_work: u32,
    /// Streamed, prefetch-friendly loads per iteration (power of two or 0).
    pub stream_words: u32,
    /// Scattered unpredictable loads per iteration.
    pub noise_loads: u32,
    /// Stores per iteration (bounds speculative run-ahead via §5.3).
    pub stores: u32,
    /// Branch flavour.
    pub branchy: BranchStyle,
    /// Whether the record arena grows with [`Scale`]. Cache-resident
    /// ("hot", core-bound) kernels keep a fixed footprint so revisits hit.
    pub scale_footprint: bool,
    /// log2 of the streamed-array arena in 8-byte words. Hot kernels use a
    /// small arena (fully cache-resident after one pass); streamers use a
    /// larger one so the prefetcher has real work — and so the §5.1
    /// prefetcher-mistraining interaction with value prediction exists.
    pub stream_arena_log2: u32,
    /// Emit a sequential (prefetcher-friendly) warmup pass over the record
    /// and noise arenas before the timed loop, so cache-resident kernels
    /// are measured warm rather than dominated by compulsory misses.
    pub warm_records: bool,
}

impl WalkParams {
    fn records(&self, scale: Scale) -> u64 {
        let f = if self.scale_footprint {
            scale.footprint_factor()
        } else {
            1
        };
        (1u64 << self.records_log2) * f
    }

    fn total_iters(&self, scale: Scale) -> u64 {
        self.iters * scale.iter_factor()
    }
}

/// Simulate the index recurrence at build time and lay out record classes.
/// Returns (class of each record, dynamic class sequence length checksum).
fn layout_classes(p: &WalkParams, scale: Scale) -> Vec<u64> {
    let records = p.records(scale);
    let mask = records - 1;
    let iters = p.total_iters(scale);
    let mut rng = SmallRng::seed_from_u64(p.pattern.seed() ^ 0xC0FF_EE00);
    let mut classes: Vec<Option<u64>> = vec![None; records as usize];
    let mut c_prev: u64 = 0;
    for i in 0..iters {
        let mut idx = i.wrapping_mul(MULT);
        if p.addr_dep {
            idx = idx.wrapping_add(c_prev.wrapping_mul(MULT2));
        }
        idx &= mask;
        let desired = p.pattern.value_at(i, &mut rng);
        let c = *classes[idx as usize].get_or_insert(desired);
        c_prev = c;
    }
    // Unvisited records get class 1 (arbitrary, never observed).
    classes.into_iter().map(|c| c.unwrap_or(1)).collect()
}

/// Build the record-walk program for `params` at `scale`.
///
/// # Panics
/// Panics if `stream_words` is not zero or a power of two.
pub fn build_walk(name: &str, p: &WalkParams, scale: Scale) -> Program {
    assert!(
        p.stream_words == 0 || p.stream_words.is_power_of_two(),
        "stream_words must be 0 or a power of two"
    );
    let records = p.records(scale);
    let rec_mask = records - 1;
    let iters = p.total_iters(scale);

    let mut b = ProgramBuilder::new();
    b.name(name);

    // Data: the record arena (class word at offset 0 of each 64B record).
    let classes = layout_classes(p, scale);
    let mut arena = vec![0u64; (records * 8) as usize];
    for (r, c) in classes.iter().enumerate() {
        arena[r * 8] = *c;
    }
    let rec_base = b.alloc_u64(&arena);
    drop(arena);

    // Noise arena: 1/4 the records, scrambled contents.
    let noise_records = (records / 4).max(64);
    let noise_mask = noise_records - 1;
    let mut rng = SmallRng::seed_from_u64(0x0BAD_5EED);
    let noise: Vec<u64> = (0..noise_records).map(|_| rng.r#gen()).collect();
    let noise_base = b.alloc_u64(&noise);
    drop(noise);

    // Stream arena: contiguous, prefetch-friendly f64 data.
    let stream_words_total: u64 = 1 << p.stream_arena_log2;
    let stream_mask = stream_words_total - 1;
    let stream: Vec<f64> = (0..stream_words_total)
        .map(|i| 1.0 + (i % 97) as f64 * 0.25)
        .collect();
    let stream_base = b.alloc_f64(&stream);
    drop(stream);

    // Output arena.
    let out_words: u64 = 1 << 10;
    let out_mask = out_words - 1;
    let out_base = b.reserve(out_words * 8);

    // Registers.
    let (rbase, ri, rn, rc, rt, racc) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let (rnoise, rstream, rout, rt2, rmult, rt3) =
        (Reg(7), Reg(8), Reg(9), Reg(10), Reg(11), Reg(12));
    let rmult2 = Reg(13);
    let (facc0, facc1, fx, fcoef) = (FReg(1), FReg(2), FReg(3), FReg(4));

    b.li(rbase, rec_base as i64);
    b.li(rnoise, noise_base as i64);
    b.li(rstream, stream_base as i64);
    b.li(rout, out_base as i64);
    b.li(rmult, MULT as i64);
    b.li(rmult2, MULT2 as i64);
    b.li(ri, 0);
    b.li(rn, iters as i64);
    if p.addr_dep {
        // Seed the class feedback register; without the address
        // dependence the record load fully defines rc before any use.
        b.li(rc, 0);
    }
    b.li(racc, 0x1234);
    if p.stream_words > 0 || p.fp_work > 0 {
        // Zero the FP accumulators read by fmadd/fadd below.
        b.icvtf(facc0, Reg(0));
        b.icvtf(facc1, Reg(0));
    }

    if p.warm_records {
        // Sequential warmup touch of the record arena (stride prefetcher
        // hides most of it), then the noise arena.
        b.li(rt, rec_base as i64);
        b.li(rt2, (rec_base + records * 64) as i64);
        let warm = b.here_label();
        b.ld(Reg(0), rt, 0);
        b.addi(rt, rt, 64);
        b.blt(rt, rt2, warm);
        b.li(rt, noise_base as i64);
        b.li(rt2, (noise_base + noise_records * 8) as i64);
        let warm2 = b.here_label();
        b.ld(Reg(0), rt, 0);
        b.addi(rt, rt, 64);
        b.blt(rt, rt2, warm2);
    }

    let top = b.here_label();

    // idx = (i*MULT [+ c*MULT]) & rec_mask; addr = rec_base + idx*64
    b.mul(rt, ri, rmult);
    if p.addr_dep {
        b.mul(rt2, rc, rmult2);
        b.add(rt, rt, rt2);
    }
    b.andi(rt, rt, rec_mask as i64);
    b.slli(rt, rt, 6);
    b.add(rt, rt, rbase);
    b.ld(rc, rt, 0); // the long-latency, value-predictable record load

    // Dependent integer work on the class.
    for k in 0..p.alu_work {
        match k % 4 {
            0 => {
                b.add(racc, racc, rc);
            }
            1 => {
                b.xor(racc, racc, rt);
            }
            2 => {
                b.slli(rt2, rc, 2);
                b.add(racc, racc, rt2);
            }
            _ => {
                b.srli(rt2, racc, 3);
                b.xor(racc, racc, rt2);
            }
        }
    }

    // Optional data-dependent branch.
    match p.branchy {
        BranchStyle::None => {}
        BranchStyle::OnClass => {
            let skip = b.label();
            b.andi(rt2, rc, 1);
            b.bne(rt2, Reg(0), skip);
            b.addi(racc, racc, 13);
            b.xori(racc, racc, 0x55);
            b.bind(skip);
        }
        BranchStyle::OnNoise => {
            let skip = b.label();
            b.mul(rt2, racc, rmult);
            b.srli(rt2, rt2, 17);
            b.andi(rt2, rt2, 1);
            b.bne(rt2, Reg(0), skip);
            b.addi(racc, racc, 13);
            b.xori(racc, racc, 0x55);
            b.bind(skip);
        }
    }

    // Scattered unpredictable loads.
    for j in 0..p.noise_loads {
        b.addi(rt2, ri, (j as i64 + 1) * 7777);
        b.mul(rt2, rt2, rmult);
        b.andi(rt2, rt2, noise_mask as i64);
        b.slli(rt2, rt2, 3);
        b.add(rt2, rt2, rnoise);
        b.ld(rt3, rt2, 0);
        b.xor(racc, racc, rt3);
    }

    // Streamed loads + FP work (class couples in through a conversion,
    // addresses do not depend on it).
    if p.stream_words > 0 || p.fp_work > 0 {
        b.icvtf(fcoef, rc);
    }
    if p.stream_words > 0 {
        let log_sw = p.stream_words.trailing_zeros();
        for s in 0..p.stream_words {
            b.slli(rt2, ri, log_sw as i64);
            b.addi(rt2, rt2, s as i64);
            b.andi(rt2, rt2, stream_mask as i64);
            b.slli(rt2, rt2, 3);
            b.add(rt2, rt2, rstream);
            b.fld(fx, rt2, 0);
            if s % 2 == 0 {
                b.fmadd(facc0, fx, fcoef);
            } else {
                b.fmadd(facc1, fx, fcoef);
            }
        }
    }
    for k in 0..p.fp_work {
        match k % 3 {
            0 => {
                b.fmul(fx, fcoef, fcoef);
            }
            1 => {
                b.fadd(facc0, facc0, fx);
            }
            _ => {
                b.fmadd(facc1, fx, fcoef);
            }
        }
    }

    // Stores.
    for k in 0..p.stores {
        if k == 0 && p.stores > 1 {
            // One address-scrambled store.
            b.mul(rt2, ri, rmult);
            b.andi(rt2, rt2, out_mask as i64);
        } else {
            b.andi(rt2, ri, out_mask as i64);
        }
        b.slli(rt2, rt2, 3);
        b.add(rt2, rt2, rout);
        b.st(racc, rt2, 0); // offset 0; register-computed address
    }

    // Loop control.
    b.addi(ri, ri, 1);
    b.blt(ri, rn, top);

    // Publish results for differential checks.
    if p.stream_words > 0 || p.fp_work > 0 {
        b.fadd(facc0, facc0, facc1);
        b.fcvti(rt, facc0);
        b.xor(racc, racc, rt);
    }
    b.st(racc, rout, 0);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::interp::{Interp, SimpleBus};

    fn params() -> WalkParams {
        WalkParams {
            records_log2: 8,
            iters: 50,
            pattern: ClassPattern::Periodic(vec![3, 5, 7]),
            addr_dep: true,
            alu_work: 4,
            fp_work: 2,
            stream_words: 4,
            noise_loads: 1,
            stores: 1,
            branchy: BranchStyle::OnClass,
            scale_footprint: true,
            stream_arena_log2: 12,
            warm_records: false,
        }
    }

    #[test]
    fn walk_builds_and_halts() {
        let p = build_walk("t", &params(), Scale::Tiny);
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 1_000_000);
        assert!(res.halted);
        assert!(res.loads > 50 * 5);
        assert!(res.stores >= 50);
    }

    #[test]
    fn layout_is_deterministic() {
        let a = build_walk("t", &params(), Scale::Tiny);
        let b = build_walk("t", &params(), Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn class_sequence_follows_pattern_mostly() {
        // Follow the recurrence; most observed classes should equal the
        // requested pattern (collisions cause occasional deviations).
        let p = params();
        let classes = layout_classes(&p, Scale::Tiny);
        let mask = (1u64 << p.records_log2) - 1;
        let mut c_prev = 0u64;
        let mut matches = 0;
        let pat = [3u64, 5, 7];
        for i in 0..p.iters {
            let mut idx = i.wrapping_mul(MULT);
            idx = idx.wrapping_add(c_prev.wrapping_mul(MULT2));
            idx &= mask;
            let c = classes[idx as usize];
            if c == pat[(i % 3) as usize] {
                matches += 1;
            }
            c_prev = c;
        }
        assert!(
            matches as f64 / p.iters as f64 > 0.8,
            "{matches}/{}",
            p.iters
        );
    }

    #[test]
    fn biased_random_pattern_mixes_values() {
        let p = WalkParams {
            pattern: ClassPattern::BiasedRandom {
                values: (3, 9),
                bias_percent: 70,
                seed: 42,
            },
            addr_dep: false,
            ..params()
        };
        let classes = layout_classes(&p, Scale::Small);
        let threes = classes.iter().filter(|&&c| c == 3).count();
        let nines = classes.iter().filter(|&&c| c == 9).count();
        assert!(threes > nines, "bias should favour the majority value");
        assert!(nines > 0, "minority value must appear");
    }

    #[test]
    fn scale_grows_the_program_data() {
        let tiny = build_walk("t", &params(), Scale::Tiny);
        let full = build_walk("t", &params(), Scale::Full);
        assert!(full.data_bytes() > tiny.data_bytes());
    }

    #[test]
    #[should_panic(expected = "stream_words")]
    fn bad_stream_words_panics() {
        let p = WalkParams {
            stream_words: 3,
            ..params()
        };
        let _ = build_walk("t", &p, Scale::Tiny);
    }
}
