//! The linter-driven fixes in the walk template are strictly conditional:
//! a parameter set whose behaviour was already correct (no address
//! dependence, no FP work) emits a byte-identical program to the pre-fix
//! generator — and identical programs trivially produce identical
//! `PipeStats`. Affected parameter sets gain exactly the missing
//! initializations and nothing else.

use mtvp_isa::Op;
use mtvp_workloads::{build_walk, BranchStyle, ClassPattern, Scale, WalkParams};

/// The class-feedback register `rc` and the FP accumulators inside
/// `build_walk` (fixed assignments in the template).
const RC: u8 = 4;
const FACC0: u8 = 1;
const FACC1: u8 = 2;

fn base_params() -> WalkParams {
    WalkParams {
        records_log2: 6,
        iters: 8,
        pattern: ClassPattern::Constant(3),
        addr_dep: false,
        alu_work: 2,
        fp_work: 0,
        stream_words: 0,
        noise_loads: 0,
        stores: 1,
        branchy: BranchStyle::None,
        scale_footprint: false,
        stream_arena_log2: 8,
        warm_records: false,
    }
}

#[test]
fn unaffected_kernels_gain_no_initialization_code() {
    // Pure-integer, no-address-dependence kernels never read `rc` or the
    // FP accumulators before defining them, so the fix must emit nothing:
    // no `li rc, 0` seed and no `icvtf` accumulator zeroing anywhere.
    let p = build_walk("plain", &base_params(), Scale::Tiny);
    assert!(
        !p.code.iter().any(|i| i.op == Op::Li && i.rd == RC),
        "unaffected program seeds rc"
    );
    assert!(
        !p.code.iter().any(|i| i.op == Op::Icvtf),
        "unaffected program zeroes FP accumulators"
    );
}

#[test]
fn addr_dep_kernels_seed_the_class_register_once() {
    let mut params = base_params();
    params.addr_dep = true;
    let p = build_walk("chase", &params, Scale::Tiny);
    let seeds: Vec<usize> = p
        .code
        .iter()
        .enumerate()
        .filter(|(_, i)| i.op == Op::Li && i.rd == RC)
        .map(|(pc, _)| pc)
        .collect();
    assert_eq!(seeds.len(), 1, "expected exactly one rc seed: {seeds:?}");
    // The seed precedes the first load that feeds rc back into the index.
    let first_ld = p.code.iter().position(|i| i.op == Op::Ld).unwrap();
    assert!(seeds[0] < first_ld, "rc seeded after the first record load");
}

#[test]
fn fp_kernels_zero_both_accumulators_from_r0() {
    for (fp_work, stream_words) in [(4u32, 0u32), (0, 4), (6, 8)] {
        let mut params = base_params();
        params.fp_work = fp_work;
        params.stream_words = stream_words;
        let p = build_walk("fp", &params, Scale::Tiny);
        for facc in [FACC0, FACC1] {
            assert!(
                p.code
                    .iter()
                    .any(|i| i.op == Op::Icvtf && i.rd == facc && i.rs1 == 0),
                "fp_work={fp_work} stream_words={stream_words}: f{facc} not zeroed from r0"
            );
        }
    }
}
