//! Property-based tests of workload construction and the random-program
//! generator's termination guarantee.

use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_workloads::synth::{random_program, SynthParams};
use mtvp_workloads::{suite, Scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_programs_always_halt(seed: u64, iters in 1u64..60, ops in 5usize..60) {
        let p = random_program(seed, SynthParams {
            iterations: iters,
            body_ops: ops,
            arena_words_log2: 8,
        });
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 5_000_000);
        prop_assert!(res.halted, "seed {} did not halt", seed);
        // Dynamic length is bounded by iterations * (body + overhead);
        // memory body ops expand to up to 3 instructions each.
        prop_assert!(res.dyn_instrs <= iters * (3 * ops as u64 + 25) + 50);
    }

    #[test]
    fn generator_is_deterministic(seed: u64) {
        let params = SynthParams::default();
        prop_assert_eq!(random_program(seed, params), random_program(seed, params));
    }
}

#[test]
fn workload_dynamic_length_scales_with_scale() {
    for wl in suite().into_iter().take(4) {
        let tiny = wl.build(Scale::Tiny);
        let small = wl.build(Scale::Small);
        let mut b1 = SimpleBus::new();
        let mut b2 = SimpleBus::new();
        let r1 = Interp::new(&tiny).run(&mut b1, 50_000_000);
        let r2 = Interp::new(&small).run(&mut b2, 50_000_000);
        assert!(r1.halted && r2.halted);
        assert!(
            r2.dyn_instrs > 4 * r1.dyn_instrs,
            "{}: {} !> 4*{}",
            wl.name,
            r2.dyn_instrs,
            r1.dyn_instrs
        );
    }
}
