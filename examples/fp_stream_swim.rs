//! The swim scenario (§5.6): a floating-point streamer whose coefficient
//! loads carry *two* values in biased random order. A conservative
//! predictor cannot stay confident, so single-value MTVP gains almost
//! nothing; following multiple predicted values in separate threads
//! recovers a large speedup.
//!
//! ```sh
//! cargo run --release --example fp_stream_swim
//! ```

use mtvp_engine::{run_program, suite, Mode, Scale, SimConfig};

fn main() {
    let swim = suite()
        .into_iter()
        .find(|w| w.name == "swim")
        .expect("swim in suite");
    println!("swim kernel: {}", swim.description);
    let program = swim.build(Scale::Small);

    let base = run_program(&SimConfig::new(Mode::Baseline), &program);

    let mut single = SimConfig::new(Mode::Mtvp);
    single.contexts = 8;
    let single_r = run_program(&single, &program);

    let mut multi = SimConfig::new(Mode::MultiValue);
    multi.contexts = 8;
    let multi_r = run_program(&multi, &program);

    println!("\nbaseline      IPC {:.3}", base.ipc());
    println!(
        "single-value  IPC {:.3}  ({:+.1}%)  followed={} correct={} wrong={}",
        single_r.ipc(),
        single_r.stats.speedup_over(&base.stats),
        single_r.stats.vp.stvp_used + single_r.stats.vp.mtvp_spawns,
        single_r.stats.vp.mtvp_correct,
        single_r.stats.vp.mtvp_wrong,
    );
    println!(
        "multi-value   IPC {:.3}  ({:+.1}%)  spawns={} (+{} extra values) correct={} wrong={}",
        multi_r.ipc(),
        multi_r.stats.speedup_over(&base.stats),
        multi_r.stats.vp.mtvp_spawns,
        multi_r.stats.vp.multi_value_spawns,
        multi_r.stats.vp.mtvp_correct,
        multi_r.stats.vp.mtvp_wrong,
    );
}
