//! The mcf scenario: the paper's flagship integer benchmark — a huge
//! dependent record walk with near-perfect value locality — run across
//! every machine mode of the evaluation.
//!
//! ```sh
//! cargo run --release --example pointer_chase_mcf
//! ```

use mtvp_engine::{run_program, suite, Mode, Scale, SimConfig};

fn main() {
    let mcf = suite()
        .into_iter()
        .find(|w| w.name == "mcf")
        .expect("mcf in suite");
    println!("mcf kernel: {}", mcf.description);
    let program = mcf.build(Scale::Small);

    let base = run_program(&SimConfig::new(Mode::Baseline), &program);
    println!(
        "\n{:<14}{:>10}{:>8}{:>12}",
        "mode", "cycles", "IPC", "vs baseline"
    );
    println!(
        "{:<14}{:>10}{:>8.3}{:>12}",
        "baseline",
        base.stats.cycles,
        base.ipc(),
        "-"
    );

    let modes: Vec<(&str, SimConfig)> = vec![
        ("stvp", SimConfig::new(Mode::Stvp)),
        ("mtvp2", {
            let mut c = SimConfig::new(Mode::Mtvp);
            c.contexts = 2;
            c
        }),
        ("mtvp8", SimConfig::new(Mode::Mtvp)),
        ("spawn-only", SimConfig::new(Mode::SpawnOnly)),
        ("wide-window", SimConfig::new(Mode::WideWindow)),
    ];
    for (name, cfg) in modes {
        let r = run_program(&cfg, &program);
        println!(
            "{:<14}{:>10}{:>8.3}{:>+11.1}%",
            name,
            r.stats.cycles,
            r.ipc(),
            r.stats.speedup_over(&base.stats)
        );
    }
    println!(
        "\nThe dependent chase defeats the wide window (it cannot compute the \
         next address), while value prediction in a spawned thread both breaks \
         the dependence and commits past the stalled load."
    );
}
