//! Explore the value predictors directly: feed characteristic value
//! sequences to each predictor and report its accuracy and confidence —
//! a library-level tour of `mtvp-vp` without the cycle simulator.
//!
//! ```sh
//! cargo run --release --example predictor_explorer
//! ```

use mtvp_vp::{
    ConfidenceConfig, DfcmConfig, DfcmPredictor, FcmConfig, FcmPredictor, LastValuePredictor,
    StridePredictor, ValuePredictor, WangFranklinConfig, WangFranklinPredictor,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sequences() -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = SmallRng::seed_from_u64(99);
    vec![
        ("constant", vec![42; 600]),
        ("stride +8", (0..600u64).map(|i| 0x1000 + i * 8).collect()),
        (
            "period-3",
            (0..600usize).map(|i| [7u64, 11, 13][i % 3]).collect(),
        ),
        ("delta-period-3", {
            let mut v = 5_000u64;
            (0..600usize)
                .map(|i| {
                    v = v.wrapping_add([8i64, 8, -16][i % 3] as u64);
                    v
                })
                .collect()
        }),
        (
            "random",
            (0..600).map(|_| rng.r#gen::<u64>() % 1000).collect(),
        ),
        (
            "biased 70/30",
            (0..600)
                .map(|_| if rng.gen_range(0..10) < 7 { 5u64 } else { 11 })
                .collect(),
        ),
    ]
}

fn score(p: &mut dyn ValuePredictor, seq: &[u64]) -> (f64, f64) {
    let (mut confident, mut correct) = (0u32, 0u32);
    for &v in seq {
        let pred = p.predict(0x40);
        if let Some(pv) = pred.confident_value() {
            confident += 1;
            if pv == v {
                correct += 1;
            }
            p.spec_update(0x40, pv);
        }
        p.train(0x40, v);
    }
    let n = seq.len() as f64;
    (
        confident as f64 / n,
        if confident == 0 {
            0.0
        } else {
            correct as f64 / confident as f64
        },
    )
}

fn main() {
    let conf = ConfidenceConfig::hpca2005();
    println!(
        "{:<16}{:>22}{:>22}{:>22}{:>22}{:>22}",
        "sequence", "last-value", "stride", "fcm-3", "dfcm-3", "wang-franklin"
    );
    for (name, seq) in sequences() {
        print!("{name:<16}");
        let mut predictors: Vec<Box<dyn ValuePredictor>> = vec![
            Box::new(LastValuePredictor::new(1024, conf)),
            Box::new(StridePredictor::new(1024, conf)),
            Box::new(FcmPredictor::new(FcmConfig::hpca2005())),
            Box::new(DfcmPredictor::new(DfcmConfig::hpca2005())),
            Box::new(WangFranklinPredictor::new(WangFranklinConfig::hpca2005())),
        ];
        for p in predictors.iter_mut() {
            let (cov, acc) = score(p.as_mut(), &seq);
            print!("{:>11.0}%/{:>7.0}%", cov * 100.0, acc * 100.0);
        }
        println!();
    }
    println!(
        "\n(coverage = fraction of loads predicted confidently; accuracy = of those, correct)"
    );
}
