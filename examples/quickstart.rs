//! Quickstart: write a small program with the `mtvp-isa` builder, run it
//! on the baseline machine and on a multithreaded-value-prediction
//! machine, and compare useful IPC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mtvp_engine::{run_program, Mode, SimConfig};
use mtvp_isa::{ProgramBuilder, Reg};

fn main() {
    // The canonical threaded-value-prediction scenario: each iteration
    // loads a record's "class" field — a long-latency miss whose *value*
    // is constant, hence trivially predictable — and the address of the
    // NEXT record depends on that value. A wide window cannot run ahead
    // (the address chain is serial); predicting the value in a spawned
    // thread breaks the chain and commits past the stalled load.
    let mut b = ProgramBuilder::new();
    b.name("quickstart-walk");
    const RECORDS: u64 = 1 << 17; // 8 MB of 64-byte records: misses a warm L3
    let first = b.data_cursor();
    let mut words = Vec::with_capacity((RECORDS * 8) as usize);
    for _ in 0..RECORDS {
        words.extend_from_slice(&[7, 0, 0, 0, 0, 0, 0, 0]); // class = 7 everywhere
    }
    b.alloc_u64(&words);

    let (base, c, sum, i, n, t, m1, m2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
    );
    b.li(base, first as i64)
        .li(c, 0)
        .li(sum, 0)
        .li(i, 0)
        .li(n, 2_000);
    b.li(m1, 2654435761);
    b.li(m2, 0x9E37_79B9_7F4A_7C15u64 as i64);
    let top = b.here_label();
    // index of the next record depends on the previously loaded class:
    b.mul(t, i, m1);
    b.mul(c, c, m2);
    b.add(t, t, c);
    b.andi(t, t, (RECORDS - 1) as i64);
    b.slli(t, t, 6);
    b.add(t, t, base);
    b.ld(c, t, 0); // THE load: long-latency, value always 7
    b.add(sum, sum, c);
    b.xor(sum, sum, t);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let program = b.build();

    println!("program: {} static instructions", program.len());

    let base = run_program(&SimConfig::new(Mode::Baseline), &program);
    println!(
        "baseline     : {:>9} cycles, IPC {:.3}",
        base.stats.cycles,
        base.ipc()
    );

    for contexts in [2usize, 4, 8] {
        let mut cfg = SimConfig::new(Mode::Mtvp);
        cfg.contexts = contexts;
        let r = run_program(&cfg, &program);
        println!(
            "mtvp {contexts} thread: {:>9} cycles, IPC {:.3}  ({:+.1}% vs baseline, {} spawns, {} confirmed)",
            r.stats.cycles,
            r.ipc(),
            r.stats.speedup_over(&base.stats),
            r.stats.vp.mtvp_spawns,
            r.stats.vp.mtvp_correct,
        );
    }
}
