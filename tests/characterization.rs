//! Characterization tests: each SPEC-like kernel must actually live in the
//! behaviour regime its registry description claims. These guard the
//! workload calibration that every figure depends on.

use mtvp_engine::{run_program, Mode, Scale, SimConfig};
use mtvp_engine::{PipeStats, Suite};
use mtvp_workloads::suite;
use std::collections::HashMap;

fn baseline_stats() -> HashMap<String, PipeStats> {
    let cfg = SimConfig::new(Mode::Baseline);
    suite()
        .into_iter()
        .map(|wl| {
            let program = wl.build(Scale::Small);
            (wl.name.to_string(), run_program(&cfg, &program).stats)
        })
        .collect()
}

#[test]
fn memory_bound_stars_reach_main_memory() {
    let stats = baseline_stats();
    for name in ["mcf", "vpr r", "twolf"] {
        let s = &stats[name];
        assert!(
            s.mem.mem_accesses > 100,
            "{name} should miss to memory: {:?}",
            s.mem
        );
        assert!(
            s.ipc() < 0.5,
            "{name} should be memory-bound: IPC {:.3}",
            s.ipc()
        );
    }
}

#[test]
fn hot_kernels_stay_in_cache() {
    let stats = baseline_stats();
    for name in ["crafty", "gzip g", "mesa", "lucas", "sixtrack"] {
        let s = &stats[name];
        let total_loads = s.mem.l1_hits + s.mem.l2_hits + s.mem.l3_hits + s.mem.mem_accesses;
        // The uninitialized output arena is never warmed, so allow its
        // compulsory store misses on top of the 2% load-miss budget.
        assert!(
            (s.mem.mem_accesses as f64) < 0.02 * total_loads as f64 + 200.0,
            "{name} should be cache-resident: {:?}",
            s.mem
        );
        assert!(
            s.ipc() > 0.4,
            "{name} should not be memory-bound: IPC {:.3}",
            s.ipc()
        );
    }
}

#[test]
fn fp_streamers_use_the_prefetcher() {
    let stats = baseline_stats();
    let mut with_hits = 0;
    for name in ["mgrid", "applu", "wupwise", "galgel", "facerec"] {
        if stats[name].mem.stream_hits > 20 {
            with_hits += 1;
        }
    }
    assert!(
        with_hits >= 3,
        "most FP streamers should see stream-buffer hits"
    );
}

#[test]
fn suites_are_balanced() {
    let s = suite();
    assert_eq!(s.iter().filter(|w| w.suite == Suite::Int).count(), 17);
    assert_eq!(s.iter().filter(|w| w.suite == Suite::Fp).count(), 15);
}

#[test]
fn int_suite_has_a_gain_gradient() {
    // The per-benchmark MTVP speedups must not be uniform: the paper's
    // figures show a wide spread. Compare one star against one hot kernel.
    let mtvp = SimConfig::new(Mode::Mtvp);
    let base = SimConfig::new(Mode::Baseline);
    let star = suite().into_iter().find(|w| w.name == "mcf").unwrap();
    let hot = suite().into_iter().find(|w| w.name == "crafty").unwrap();
    let star_p = star.build(Scale::Small);
    let hot_p = hot.build(Scale::Small);
    let star_speedup = run_program(&mtvp, &star_p)
        .stats
        .speedup_over(&run_program(&base, &star_p).stats);
    let hot_speedup = run_program(&mtvp, &hot_p)
        .stats
        .speedup_over(&run_program(&base, &hot_p).stats);
    assert!(
        star_speedup > hot_speedup + 50.0,
        "mcf (+{star_speedup:.0}%) must dominate crafty (+{hot_speedup:.0}%)"
    );
}
