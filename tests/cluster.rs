//! Differential tests for the cluster fabric: however the fleet behaves
//! — cold caches, warm caches, cache peering, or a worker dying mid-sweep
//! — the coordinator's merged sweep must serialize byte-identically to a
//! single-node `Engine::run_scenario` of the same scenario.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use mtvp_cluster::{run_cluster, spawn_worker, CoordOptions, WorkerProc, MANIFEST_FORMAT};
use mtvp_engine::{
    builtin, cell_descriptor, key_of, partition, suite, CacheMode, Engine, EngineOptions, JobKey,
    Scenario,
};
use serde::Value;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtvp-cluster-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn smoke() -> Scenario {
    builtin("smoke").expect("smoke is a builtin scenario")
}

/// The ground truth: the smoke sweep computed in-process, uncached.
fn single_node_sweep_json() -> String {
    let engine = Engine::new(EngineOptions {
        cache: CacheMode::Off,
        jobs: Some(2),
        shard: None,
        progress: false,
    });
    let report = engine
        .run_scenario(&smoke(), None)
        .expect("single-node sweep");
    serde_json::to_string(&report.sweep).expect("sweep serializes")
}

/// The coordinator's cell keys in task order, for predicting placement.
fn smoke_keys() -> Vec<JobKey> {
    let scenario = smoke();
    let scale = scenario.scale_or(None);
    let configs = scenario.configs().expect("smoke expands");
    let mut keys = Vec::new();
    for wl in suite().into_iter().filter(|w| scenario.keeps(w)) {
        for (_, cfg) in &configs {
            keys.push(key_of(&cell_descriptor(wl.name, cfg, scale)));
        }
    }
    keys
}

#[test]
fn cluster_sweep_is_byte_identical_cold_and_warm() {
    let root = scratch("coldwarm");
    let fleet: Vec<WorkerProc> = (0..3)
        .map(|i| spawn_worker(&root.join(format!("w{i}")), 1, Vec::new()).expect("boot worker"))
        .collect();
    let manifest = root.join("manifest.json");
    let opts = CoordOptions {
        workers: fleet.iter().map(|w| w.addr.clone()).collect(),
        steal: false, // keep placement deterministic so the warm run is all hits
        manifest: Some(manifest.clone()),
        ..CoordOptions::default()
    };
    let cold = run_cluster(&smoke(), &opts).expect("cold sweep");
    let warm = run_cluster(&smoke(), &opts).expect("warm sweep");
    for w in fleet {
        w.stop();
    }

    let single = single_node_sweep_json();
    assert_eq!(cold.total_cells, 4);
    assert_eq!(cold.worker_cached, 0);
    assert_eq!(serde_json::to_string(&cold.sweep).unwrap(), single);
    assert_eq!(serde_json::to_string(&warm.sweep).unwrap(), single);
    // Same fleet, same rendezvous placement: the warm run never simulates.
    assert_eq!(warm.worker_cached, 4);
    assert_eq!(cold.workers.iter().map(|w| w.done).sum::<u64>(), 4);
    assert_eq!(cold.retries, 0);
    assert_eq!(cold.reshards, 0);

    let text = std::fs::read_to_string(&manifest).expect("manifest written");
    let v: Value = serde_json::from_str(&text).expect("manifest parses");
    assert_eq!(
        v.get("format").and_then(Value::as_str),
        Some(MANIFEST_FORMAT)
    );
    assert_eq!(v.get("scenario").and_then(Value::as_str), Some("smoke"));
    assert_eq!(v.get("done").and_then(Value::as_u64), Some(4));
    assert_eq!(v.get("total_cells").and_then(Value::as_u64), Some(4));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_cells_migrate_to_a_new_fleet_via_peering() {
    let root = scratch("peer");
    let old = spawn_worker(&root.join("old"), 1, Vec::new()).expect("boot old worker");
    let seeded = run_cluster(
        &smoke(),
        &CoordOptions {
            workers: vec![old.addr.clone()],
            steal: false,
            ..CoordOptions::default()
        },
    )
    .expect("seed sweep");

    // A brand-new worker with a cold disk peers with the old one: every
    // cell migrates over HTTP instead of being recomputed.
    let fresh = spawn_worker(&root.join("new"), 1, vec![old.addr.clone()]).expect("boot new");
    let migrated = run_cluster(
        &smoke(),
        &CoordOptions {
            workers: vec![fresh.addr.clone()],
            steal: false,
            ..CoordOptions::default()
        },
    )
    .expect("migrated sweep");
    fresh.stop();
    old.stop();

    assert_eq!(migrated.total_cells, seeded.total_cells);
    assert_eq!(migrated.worker_cached, migrated.total_cells);
    assert_eq!(
        serde_json::to_string(&migrated.sweep).unwrap(),
        serde_json::to_string(&seeded.sweep).unwrap()
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_worker_killed_mid_sweep_is_resharded_and_the_sweep_is_unchanged() {
    let root = scratch("kill");
    let fleet: Vec<WorkerProc> = (0..3)
        .map(|i| spawn_worker(&root.join(format!("w{i}")), 1, Vec::new()).expect("boot worker"))
        .collect();
    let addrs: Vec<String> = fleet.iter().map(|w| w.addr.clone()).collect();

    // Kill the worker that owns the most cells (≥ 2 of 4 by pigeonhole),
    // so at least one of its cells is still unfinished at kill time and
    // must be re-sharded to a survivor.
    let keys = smoke_keys();
    let buckets = partition(&keys, &addrs);
    let victim_idx = (0..addrs.len())
        .max_by_key(|&i| buckets[i].len())
        .expect("non-empty fleet");
    let victim_addr = addrs[victim_idx].clone();
    assert!(buckets[victim_idx].len() >= 2);

    let mut fleet: Vec<Option<WorkerProc>> = fleet.into_iter().map(Some).collect();
    let victim = Arc::new(Mutex::new(fleet[victim_idx].take()));
    let hook_victim = Arc::clone(&victim);
    let opts = CoordOptions {
        workers: addrs,
        steal: false, // survivors must not drain the victim's queue early
        retries: 1,
        backoff_ms: 50,
        on_cell: Some(Arc::new(move |completed: usize| {
            if completed == 1 {
                if let Some(w) = hook_victim.lock().expect("victim slot").take() {
                    w.stop();
                }
            }
        })),
        ..CoordOptions::default()
    };
    let report = run_cluster(&smoke(), &opts).expect("sweep survives a worker death");
    for w in fleet.into_iter().flatten() {
        w.stop();
    }
    if let Some(w) = victim.lock().expect("victim slot").take() {
        w.stop(); // the hook may not have fired if the run beat it
    }

    assert_eq!(
        serde_json::to_string(&report.sweep).unwrap(),
        single_node_sweep_json()
    );
    assert_eq!(report.dead_workers(), vec![victim_addr]);
    assert!(report.reshards >= 1, "death must trigger a re-shard");
    assert!(report.cells_resharded >= 1);
    assert!(report.retries >= 1, "the dead worker was retried first");
    let _ = std::fs::remove_dir_all(&root);
}
