//! The CMP lockdown net.
//!
//! A single-core CMP topology is *defined* to be the plain machine: a
//! `CmpMachine` assembled with one core, no co-runners and no shared L3
//! must produce bit-identical `PipeStats` **and** a bit-identical
//! `RingTracer` event stream to today's `Machine` on every registry
//! program. Any divergence means the CMP layer leaked into the
//! single-core path and every published single-core number is suspect.
//!
//! On top of the exhaustive sweep, a proptest throws randomized CMP
//! configurations at `SimConfig::validate` and runs every accepted one
//! end to end through the engine: valid configs must simulate to halt
//! deterministically, and single-core ones must match the plain engine
//! path exactly.

use mtvp_engine::{reference_trace, run_program_at, Mode, SelectorKind, SimConfig};
use mtvp_obs::{Event, RingTracer};
use mtvp_pipeline::{CmpMachine, Machine};
use mtvp_workloads::synth::{random_program, SynthParams};
use mtvp_workloads::{suite, Scale};
use proptest::prelude::*;
use std::sync::Arc;

/// The configurations the bit-identity sweep runs under: the realistic
/// MTVP machine (spawning exercises every stage), a baseline (no value
/// prediction at all), and a small-store-buffer MTVP that stresses the
/// commit/reconcile paths the CMP layer hooked into.
fn lockdown_configs() -> Vec<(String, SimConfig)> {
    let mut mtvp = SimConfig::new(Mode::Mtvp);
    mtvp.contexts = 4;
    let mut tiny_sb = SimConfig::new(Mode::Mtvp);
    tiny_sb.store_buffer = 4;
    tiny_sb.selector = SelectorKind::Always;
    vec![
        ("mtvp4".to_string(), mtvp),
        ("baseline".to_string(), SimConfig::new(Mode::Baseline)),
        ("mtvp-tiny-sb".to_string(), tiny_sb),
    ]
}

/// Run `program` under `cfg` on the plain machine and on a one-core CMP
/// topology, both tracing into a ring, and assert stats and event
/// streams are bit-identical.
fn assert_single_core_cmp_is_bit_identical(
    bench: &str,
    label: &str,
    cfg: &SimConfig,
    program: &mtvp_isa::Program,
) {
    let (_, trace) = reference_trace(program);
    let build = || {
        Machine::with_tracer(
            cfg.to_pipeline_config(),
            cfg.to_mem_config(),
            program,
            Some(Arc::clone(&trace)),
            RingTracer::new(1 << 16),
        )
    };
    let mut plain = build();
    let plain_stats = plain.run();
    let plain_tracer = plain.into_tracer();

    let mut cmp = CmpMachine::assemble(1, build(), Vec::new(), None);
    let cmp_stats = cmp.run();
    let cmp_tracer = cmp.into_tracer();

    assert_eq!(
        cmp_stats, plain_stats,
        "{bench}/{label}: single-core CMP stats diverge from the plain machine"
    );
    assert_eq!(
        cmp_stats.cmp.cores, 0,
        "{bench}/{label}: a single-core run must carry no CMP summary"
    );
    let plain_events: Vec<(u64, Event)> = plain_tracer.events().copied().collect();
    let cmp_events: Vec<(u64, Event)> = cmp_tracer.events().copied().collect();
    assert_eq!(
        cmp_events, plain_events,
        "{bench}/{label}: single-core CMP event stream diverges"
    );
    assert_eq!(cmp_tracer.dropped(), plain_tracer.dropped());
}

#[test]
fn single_core_cmp_is_bit_identical_on_every_registry_program() {
    let workloads = suite();
    // The whole registry, not a sample: a divergence on any one program
    // invalidates the cores=1 delegation contract.
    assert!(workloads.len() >= 32, "registry shrank?");
    let configs = lockdown_configs();
    for wl in &workloads {
        let program = wl.build(Scale::Tiny);
        for (label, cfg) in &configs {
            assert_single_core_cmp_is_bit_identical(wl.name, label, cfg, &program);
        }
    }
}

#[test]
fn single_core_cmp_is_bit_identical_on_synthetic_programs() {
    // Generated programs reach operand mixes the registry kernels don't.
    let configs = lockdown_configs();
    for seed in 0..4u64 {
        let program = random_program(seed, SynthParams::default());
        for (label, cfg) in &configs {
            assert_single_core_cmp_is_bit_identical(&program.name, label, cfg, &program);
        }
    }
}

/// A randomized — not necessarily valid — CMP configuration.
fn arb_cmp_config() -> impl Strategy<Value = SimConfig> {
    // The vendored proptest shim has no `prop_oneof!`; enumerated axes
    // are drawn as indices into fixed tables instead.
    (
        (0usize..6, 1usize..=4, 0usize..3, any::<bool>()),
        (0usize..3, 0u64..1000, 0usize..3, 1u64..=8),
    )
        .prop_map(
            |((mode_ix, cores, ctx_ix, xspawn), (co_n, seed, l3_ix, hop))| {
                let modes = [
                    Mode::Baseline,
                    Mode::Stvp,
                    Mode::Mtvp,
                    Mode::MtvpNoStall,
                    Mode::SpawnOnly,
                    Mode::MultiValue,
                ];
                let contexts = [1usize, 2, 4];
                let l3s = [(512u64, 8u32, 20u64), (1024, 8, 30), (4096, 16, 50)];
                let mut cfg = SimConfig::new(modes[mode_ix]);
                cfg.cores = cores;
                cfg.contexts = contexts[ctx_ix];
                cfg.cross_core_spawn = xspawn;
                cfg.co_workloads = (0..co_n)
                    .map(|i| {
                        if (seed + i as u64).is_multiple_of(2) {
                            format!("synth:{}", seed + i as u64)
                        } else {
                            format!("phases:{}", seed + i as u64)
                        }
                    })
                    .collect();
                let (kb, assoc, latency) = l3s[l3_ix];
                cfg.l3 = mtvp_engine::L3Params { kb, assoc, latency };
                cfg.interconnect_hop = hop;
                cfg
            },
        )
}

// Every *valid* randomized CMP configuration simulates a small program
// to halt, twice, with byte-identical statistics — and a valid
// single-core configuration is indistinguishable from the plain engine
// path (it IS the plain engine path).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_valid_cmp_configs_run_deterministically(cfg in arb_cmp_config()) {
        prop_assume!(cfg.validate().is_ok());
        let program = random_program(7, SynthParams::default());
        let a = run_program_at(&cfg, &program, Scale::Tiny);
        let b = run_program_at(&cfg, &program, Scale::Tiny);
        prop_assert!(a.stats.halted);
        prop_assert_eq!(&a.stats, &b.stats);
        if cfg.cores == 1 {
            prop_assert_eq!(a.stats.cmp.cores, 0);
        } else {
            prop_assert_eq!(a.stats.cmp.cores, cfg.cores);
        }
        if cfg.cross_core_spawn {
            // Remote slots exist; borrowing them is workload-dependent,
            // but the context complement must have grown.
            prop_assert_eq!(
                cfg.to_pipeline_config().total_contexts(),
                cfg.contexts + cfg.idle_cores() * cfg.contexts
            );
        }
    }
}

// validate() never panics on randomized CMP knobs, and its verdict is
// stable.
proptest! {
    #[test]
    fn validate_is_total_and_stable_on_random_cmp_configs(cfg in arb_cmp_config()) {
        let v1 = cfg.validate();
        let v2 = cfg.validate();
        prop_assert_eq!(v1.is_ok(), v2.is_ok());
    }
}

// Rejections CMP knobs must always produce: a multiprogrammed mix wider
// than the sibling cores, and cross-core spawning with no idle sibling
// to borrow from.
proptest! {
    #[test]
    fn overcommitted_topologies_never_validate(cfg in arb_cmp_config()) {
        let mut wide = cfg.clone();
        wide.co_workloads = (0..wide.cores).map(|i| format!("synth:{i}")).collect();
        prop_assert!(wide.validate().is_err());
        let mut greedy = cfg;
        greedy.mode = Mode::Mtvp;
        greedy.cross_core_spawn = true;
        greedy.co_workloads = (0..greedy.cores.saturating_sub(1))
            .map(|i| format!("synth:{i}"))
            .collect();
        prop_assert!(greedy.validate().is_err());
    }
}
