//! The heavyweight cross-crate correctness net: random programs from
//! `mtvp_workloads::synth` must produce identical architectural results on
//! the reference interpreter and on the cycle-level machine under *every*
//! speculation mode. Any divergence in final registers, memory, or
//! committed-path sequence (checked instruction-by-instruction inside the
//! machine) is a simulator bug.

use mtvp_engine::{Mode, PredictorKind, SelectorKind, SimConfig};
use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::Program;
use mtvp_pipeline::Machine;
use mtvp_workloads::synth::{random_program, SynthParams};
use std::sync::Arc;

fn modes() -> Vec<(String, SimConfig)> {
    let mut out = vec![
        ("baseline".to_string(), SimConfig::new(Mode::Baseline)),
        ("wide".to_string(), SimConfig::new(Mode::WideWindow)),
        ("stvp".to_string(), {
            let mut c = SimConfig::new(Mode::Stvp);
            c.selector = SelectorKind::Always;
            c
        }),
        ("stvp-stride".to_string(), {
            let mut c = SimConfig::new(Mode::Stvp);
            c.predictor = PredictorKind::Stride;
            c.selector = SelectorKind::Always;
            c
        }),
        ("mtvp8".to_string(), {
            let mut c = SimConfig::new(Mode::Mtvp);
            c.selector = SelectorKind::Always;
            c.spawn_latency = 1;
            c
        }),
        ("mtvp2-dfcm".to_string(), {
            let mut c = SimConfig::new(Mode::Mtvp);
            c.contexts = 2;
            c.predictor = PredictorKind::Dfcm;
            c
        }),
        ("mtvp-nostall".to_string(), {
            let mut c = SimConfig::new(Mode::MtvpNoStall);
            c.selector = SelectorKind::Always;
            c
        }),
        ("spawn-only".to_string(), SimConfig::new(Mode::SpawnOnly)),
        ("multi-value".to_string(), SimConfig::new(Mode::MultiValue)),
        ("oracle-mtvp".to_string(), {
            let mut c = SimConfig::oracle(Mode::Mtvp);
            c.selector = SelectorKind::Always;
            c
        }),
    ];
    // Small store buffer stresses commit stalls.
    let mut tiny_sb = SimConfig::new(Mode::Mtvp);
    tiny_sb.store_buffer = 4;
    tiny_sb.selector = SelectorKind::Always;
    out.push(("mtvp-tiny-sb".to_string(), tiny_sb));
    // Cold caches and no prefetcher stress the fill/replay paths.
    let mut cold = SimConfig::new(Mode::Mtvp);
    cold.warm_start = false;
    cold.prefetcher = false;
    cold.mshrs = 4;
    cold.selector = SelectorKind::Always;
    out.push(("mtvp-cold-tiny-mshr".to_string(), cold));
    out
}

fn check_program(program: &Program) {
    let mut bus = SimpleBus::new();
    let mut interp = Interp::new(program);
    let (ires, trace) = interp.run_traced(&mut bus, 20_000_000);
    assert!(ires.halted, "{} reference did not halt", program.name);
    let trace = Arc::new(trace);

    for (name, cfg) in modes() {
        let mut pcfg = cfg.to_pipeline_config();
        pcfg.max_cycles = 100_000_000;
        let mut m =
            Machine::with_mem_config(pcfg, cfg.to_mem_config(), program, Some(trace.clone()));
        let stats = m.run();
        assert!(stats.halted, "{}: {name} did not halt", program.name);
        assert_eq!(
            stats.committed, ires.dyn_instrs,
            "{}: {name} committed-count mismatch",
            program.name
        );
        let regs = m.arch_int_regs();
        for (r, &reg) in regs.iter().enumerate().take(32).skip(1) {
            assert_eq!(
                reg, ires.int_regs[r],
                "{}: {name} r{r} mismatch",
                program.name
            );
        }
        m.check_regfile()
            .unwrap_or_else(|e| panic!("{}: {name}: {e}", program.name));
    }
}

#[test]
fn random_programs_agree_across_all_modes() {
    for seed in 0..12u64 {
        let program = random_program(seed, SynthParams::default());
        check_program(&program);
    }
}

#[test]
fn memory_heavy_random_programs_agree() {
    for seed in 100..106u64 {
        let program = random_program(
            seed,
            SynthParams {
                iterations: 30,
                body_ops: 50,
                arena_words_log2: 6,
            },
        );
        check_program(&program);
    }
}

#[test]
fn classic_kernels_agree_across_all_modes() {
    use mtvp_workloads::kernels;
    check_program(&kernels::matmul(8));
    let bytes: Vec<u8> = (0..400).map(|i| (i * 131 % 256) as u8).collect();
    check_program(&kernels::histogram(&bytes));
    check_program(&kernels::string_search(
        b"the quick brown fox jumps over the lazy dog the end",
        b"the",
    ));
}

#[test]
fn long_random_programs_agree() {
    for seed in 200..203u64 {
        let program = random_program(
            seed,
            SynthParams {
                iterations: 150,
                body_ops: 40,
                arena_words_log2: 12,
            },
        );
        check_program(&program);
    }
}
