//! Integration tests for the experiment engine: cache-key determinism,
//! resume correctness (a half-deleted cache reconstructs bit-identical
//! results), and scenario serde round-trips.

use mtvp_engine::{
    builtin, cell_descriptor, key_of, CacheMode, Engine, EngineOptions, L3Params, Mode, Scenario,
    SimConfig,
};
use mtvp_pipeline::{PredictorKind, SelectorKind};
use mtvp_workloads::Scale;
use std::path::PathBuf;

/// A unique scratch cache directory per test (removed on drop).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("mtvp-engine-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn disk_engine(dir: &ScratchDir) -> Engine {
    Engine::new(EngineOptions {
        cache: CacheMode::Disk(dir.0.clone()),
        jobs: Some(2),
        shard: None,
        progress: false,
    })
}

/// Every field of `SimConfig` must feed the cache key: a change in any
/// one of them yields a different key, so a stale cell can never be
/// served for a different experiment.
#[test]
fn cache_key_depends_on_every_config_field() {
    let base = SimConfig::new(Mode::Mtvp);
    let base_key = key_of(&cell_descriptor("mcf", &base, Scale::Tiny));

    // Same inputs, same key — twice.
    assert_eq!(
        base_key,
        key_of(&cell_descriptor("mcf", &base, Scale::Tiny))
    );

    type Mutation = Box<dyn Fn(&mut SimConfig)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("mode", Box::new(|c| c.mode = Mode::MtvpNoStall)),
        ("contexts", Box::new(|c| c.contexts = 4)),
        ("predictor", Box::new(|c| c.predictor = PredictorKind::Dfcm)),
        ("selector", Box::new(|c| c.selector = SelectorKind::Always)),
        ("spawn_latency", Box::new(|c| c.spawn_latency = 16)),
        ("store_buffer", Box::new(|c| c.store_buffer = 64)),
        (
            "max_values_per_load",
            Box::new(|c| {
                c.mode = Mode::MultiValue;
                c.max_values_per_load = 2;
            }),
        ),
        ("inst_limit", Box::new(|c| c.inst_limit = 1_000_000)),
        ("max_cycles", Box::new(|c| c.max_cycles = 1_000_000)),
        ("prefetcher", Box::new(|c| c.prefetcher = false)),
        ("mshrs", Box::new(|c| c.mshrs = 4)),
        ("warm_start", Box::new(|c| c.warm_start = false)),
        ("fast_forward", Box::new(|c| c.fast_forward = false)),
        ("cores", Box::new(|c| c.cores = 2)),
        (
            "l3",
            Box::new(|c| {
                c.l3 = L3Params {
                    kb: 512,
                    assoc: 8,
                    latency: 20,
                }
            }),
        ),
        ("interconnect_hop", Box::new(|c| c.interconnect_hop = 9)),
        ("cross_core_spawn", Box::new(|c| c.cross_core_spawn = true)),
        (
            "co_workloads",
            Box::new(|c| c.co_workloads = vec!["synth:1".to_string()]),
        ),
    ];
    for (field, mutate) in &mutations {
        let mut cfg = base.clone();
        mutate(&mut cfg);
        assert_ne!(cfg, base, "mutation `{field}` must change the config");
        let key = key_of(&cell_descriptor("mcf", &cfg, Scale::Tiny));
        assert_ne!(key, base_key, "field `{field}` is missing from the key");
    }

    // Benchmark and scale are part of the identity too.
    assert_ne!(
        base_key,
        key_of(&cell_descriptor("mesa", &base, Scale::Tiny))
    );
    assert_ne!(
        base_key,
        key_of(&cell_descriptor("mcf", &base, Scale::Small))
    );
}

fn smoke_configs() -> Vec<(String, SimConfig)> {
    let mut mtvp = SimConfig::oracle(Mode::Mtvp);
    mtvp.contexts = 4;
    vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("mtvp4".to_string(), mtvp),
    ]
}

fn keep(w: &mtvp_workloads::Workload) -> bool {
    matches!(w.name, "mcf" | "mesa")
}

/// Interrupted-sweep resume: after deleting half the cached cells, a
/// re-run simulates only the missing ones and reconstructs a sweep
/// bit-identical to both the cold cached run and a cache-less run.
#[test]
fn half_deleted_cache_resumes_bit_identical() {
    let dir = ScratchDir::new("resume");
    let configs = smoke_configs();

    // Ground truth without any cache in the loop.
    let uncached = Engine::ephemeral().run_cells(&configs, Scale::Tiny, keep);

    // Cold run populates the cache.
    let engine = disk_engine(&dir);
    let cold = engine.run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(cold.simulated, 4);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(
        cold.sweep, uncached.sweep,
        "caching must not change results"
    );

    // Simulate an interrupted sweep: delete half the persisted cells.
    let mut cells: Vec<PathBuf> = std::fs::read_dir(&dir.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    cells.sort();
    assert_eq!(cells.len(), 4, "expected one JSON entry per cell");
    for victim in cells.iter().step_by(2) {
        std::fs::remove_file(victim).unwrap();
    }

    // Resume: only the deleted half is re-simulated; results identical.
    let resumed = engine.run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(resumed.cache_hits, 2);
    assert_eq!(resumed.simulated, 2);
    assert_eq!(
        resumed.sweep, uncached.sweep,
        "resume must be bit-identical"
    );

    // A completed scenario re-runs with zero simulations.
    let warm = engine.run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.cache_hits, 4);
    assert_eq!(warm.traces_built, 0);
    assert_eq!(warm.sweep, uncached.sweep);
}

/// The `interference` mix shape: a solo MTVP machine versus a 4-core
/// CMP whose siblings run generated co-workloads under a pressured
/// shared L3, with and without cross-core spawning.
fn interference_configs() -> Vec<(String, SimConfig)> {
    let mut solo = SimConfig::new(Mode::Mtvp);
    solo.contexts = 4;
    let mut pressured = solo.clone();
    pressured.cores = 4;
    pressured.l3 = L3Params {
        kb: 512,
        assoc: 8,
        latency: 50,
    };
    pressured.co_workloads = vec!["phases:5".to_string(), "phases:6".to_string()];
    let mut xspawn = pressured.clone();
    xspawn.cross_core_spawn = true;
    vec![
        ("solo".to_string(), solo),
        ("pressured".to_string(), pressured),
        ("pressured+xspawn".to_string(), xspawn),
    ]
}

/// A multiprogrammed CMP sweep is deterministic end to end: the sweep
/// JSON is byte-identical across `--jobs 1` vs parallel execution,
/// across cold vs warm cache, and across shards executed out of order.
#[test]
fn cmp_interference_mix_is_deterministic() {
    let dir = ScratchDir::new("cmp-mix");
    let configs = interference_configs();
    for (label, cfg) in &configs {
        cfg.validate().unwrap_or_else(|e| panic!("{label}: {e:?}"));
    }

    let serial = Engine::new(EngineOptions {
        cache: CacheMode::Off,
        jobs: Some(1),
        shard: None,
        progress: false,
    })
    .run_cells(&configs, Scale::Tiny, keep);
    let gold = serde_json::to_string(&serial.sweep).unwrap();

    let parallel = Engine::new(EngineOptions {
        cache: CacheMode::Off,
        jobs: Some(4),
        shard: None,
        progress: false,
    })
    .run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(
        gold,
        serde_json::to_string(&parallel.sweep).unwrap(),
        "--jobs must not change the sweep"
    );

    // Cold populate, then warm: byte-identical JSON, zero simulations.
    let engine = disk_engine(&dir);
    let cold = engine.run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(cold.simulated, 6);
    assert_eq!(gold, serde_json::to_string(&cold.sweep).unwrap());
    let warm = engine.run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.cache_hits, 6);
    assert_eq!(gold, serde_json::to_string(&warm.sweep).unwrap());

    // Shards executed out of order fill the same cache; the final warm
    // read-back is still byte-identical.
    let shard_dir = ScratchDir::new("cmp-mix-shards");
    for i in [2usize, 0, 1] {
        Engine::new(EngineOptions {
            cache: CacheMode::Disk(shard_dir.0.clone()),
            jobs: Some(2),
            shard: Some((i, 3)),
            progress: false,
        })
        .run_cells(&configs, Scale::Tiny, keep);
    }
    let merged = disk_engine(&shard_dir).run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(merged.simulated, 0);
    assert_eq!(merged.cache_hits, 6);
    assert_eq!(gold, serde_json::to_string(&merged.sweep).unwrap());
}

/// Scenario definitions survive a serde round-trip exactly, including
/// grids with overridden axes, and reject malformed documents.
#[test]
fn scenario_round_trips_through_json() {
    for name in [
        "fig1",
        "fig2",
        "storebuf",
        "multivalue",
        "ablation",
        "smoke",
    ] {
        let scenario = builtin(name).unwrap();
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        let back =
            Scenario::from_json(&json).unwrap_or_else(|e| panic!("{name} round-trip failed: {e}"));
        assert_eq!(back, scenario, "{name} changed across serde round-trip");
        // The expansion (the part the engine consumes) matches too.
        assert_eq!(back.configs().unwrap(), scenario.configs().unwrap());
    }
    assert!(Scenario::from_json("{]").is_err());
    assert!(Scenario::from_json("{\"title\": \"no name\"}").is_err());
}

/// The `--shard i/n` partition is complete and disjoint, and shard
/// assignment is content-addressed (stable across engines).
#[test]
fn shard_partition_is_complete_and_disjoint() {
    let dir = ScratchDir::new("shard");
    let configs = smoke_configs();
    let full = Engine::ephemeral().run_cells(&configs, Scale::Tiny, keep);

    let mut union: Vec<(String, String)> = Vec::new();
    for i in 0..3 {
        let engine = Engine::new(EngineOptions {
            cache: CacheMode::Disk(dir.0.clone()),
            jobs: None,
            shard: Some((i, 3)),
            progress: false,
        });
        let part = engine.run_cells(&configs, Scale::Tiny, keep);
        assert_eq!(part.total_cells, 4);
        assert_eq!(part.simulated + part.skipped_by_shard, 4);
        for c in &part.sweep.cells {
            union.push((c.bench.clone(), c.config.clone()));
        }
    }
    union.sort();
    let mut expected: Vec<(String, String)> = full
        .sweep
        .cells
        .iter()
        .map(|c| (c.bench.clone(), c.config.clone()))
        .collect();
    expected.sort();
    assert_eq!(union, expected, "shards must partition the sweep exactly");

    // After all shards ran against one cache dir, the whole sweep is warm.
    let warm = disk_engine(&dir).run_cells(&configs, Scale::Tiny, keep);
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.cache_hits, 4);
    assert_eq!(warm.sweep, full.sweep);
}
