//! Idle-cycle fast-forwarding must be invisible: running a workload with
//! `fast_forward` on and off has to produce *bit-identical* statistics —
//! same cycle count, same idle-cycle count, same hit/miss breakdown, same
//! speculation outcomes. The jump only replaces a stretch of provably
//! inert cycles with arithmetic.

use mtvp_engine::{run_program, run_program_traced, Mode, SelectorKind, SimConfig, TraceOptions};
use mtvp_pipeline::PipeStats;
use mtvp_workloads::{suite, Scale};

fn run_both(bench: &str, mut cfg: SimConfig) -> (PipeStats, PipeStats) {
    let wl = suite()
        .into_iter()
        .find(|w| w.name == bench)
        .unwrap_or_else(|| {
            panic!("workload {bench} not in suite");
        });
    let program = wl.build(Scale::Tiny);
    cfg.fast_forward = false;
    let slow = run_program(&cfg, &program).stats;
    cfg.fast_forward = true;
    let fast = run_program(&cfg, &program).stats;
    (slow, fast)
}

#[test]
fn baseline_mcf_is_bit_identical() {
    // Pointer-chasing mcf on the single-context baseline: long stretches
    // of pure memory stall, the fast path's bread and butter.
    let (slow, fast) = run_both("mcf", SimConfig::new(Mode::Baseline));
    assert_eq!(slow, fast);
    assert!(fast.halted);
    assert!(
        fast.idle_cycles > 0,
        "memory-bound run should have idle cycles"
    );
}

#[test]
fn baseline_cold_gzip_is_bit_identical() {
    // Cold caches and no prefetcher stress the fill/MSHR wakeup sources.
    let mut cfg = SimConfig::new(Mode::Baseline);
    cfg.warm_start = false;
    cfg.prefetcher = false;
    let (slow, fast) = run_both("gzip g", cfg);
    assert_eq!(slow, fast);
    assert!(fast.halted);
}

#[test]
fn mtvp_with_spawned_threads_is_bit_identical() {
    // Multi-context MTVP: thread spawns, speculative store buffers, and
    // the round-robin cursor (which fast-forward must replay) all in play.
    let mut cfg = SimConfig::new(Mode::Mtvp);
    cfg.contexts = 4;
    cfg.selector = SelectorKind::Always;
    let (slow, fast) = run_both("mcf", cfg);
    assert_eq!(slow, fast);
    assert!(fast.halted);
    assert!(
        fast.vp.mtvp_spawns > 0,
        "MTVP run should actually spawn threads"
    );
}

#[test]
fn fp_workload_is_bit_identical() {
    let (slow, fast) = run_both("mesa", SimConfig::new(Mode::Stvp));
    assert_eq!(slow, fast);
    assert!(fast.halted);
}

#[test]
fn tracing_is_observation_only() {
    // Attaching the ring tracer must not perturb the simulation: a traced
    // run produces bit-identical `PipeStats` to an untraced one, on both
    // the baseline and a spawning MTVP configuration.
    let wl = suite().into_iter().find(|w| w.name == "mcf").unwrap();
    let program = wl.build(Scale::Tiny);
    let mut mtvp = SimConfig::new(Mode::Mtvp);
    mtvp.contexts = 4;
    mtvp.selector = SelectorKind::Always;
    for cfg in [SimConfig::new(Mode::Baseline), mtvp] {
        let plain = run_program(&cfg, &program).stats;
        let (traced, tracer) = run_program_traced(&cfg, &program, &TraceOptions::default());
        assert_eq!(plain, traced.stats);
        assert!(!tracer.is_empty(), "traced run should record events");
    }
}
