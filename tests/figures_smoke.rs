//! Tiny-scale smoke runs of every figure's configuration matrix, plus the
//! headline shape assertions the paper's conclusions rest on.

use mtvp_engine::Sweep;
use mtvp_engine::{Mode, Scale, SimConfig, Suite};

fn tiny(names: &'static [&'static str], configs: &[(String, SimConfig)]) -> Sweep {
    Sweep::run_filtered(configs, Scale::Small, |w| names.contains(&w.name))
}

#[test]
fn fig1_oracle_sweep_runs() {
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("stvp".to_string(), SimConfig::oracle(Mode::Stvp)),
        ("mtvp4".to_string(), {
            let mut c = SimConfig::oracle(Mode::Mtvp);
            c.contexts = 4;
            c
        }),
    ];
    let sweep = tiny(&["mcf", "mgrid"], &configs);
    // The flagship claim: MTVP beats both baseline and STVP on the
    // dependent chase with an oracle predictor.
    let stvp = sweep.speedup("mcf", "stvp", "base").unwrap();
    let mtvp = sweep.speedup("mcf", "mtvp4", "base").unwrap();
    assert!(
        mtvp > 20.0,
        "oracle mtvp4 should clearly win on mcf: {mtvp:.1}%"
    );
    assert!(
        mtvp > stvp,
        "mtvp ({mtvp:.1}%) should beat stvp ({stvp:.1}%) on mcf"
    );
}

#[test]
fn fig2_spawn_latency_monotonicity() {
    let mut configs = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for lat in [1u64, 16] {
        let mut c = SimConfig::oracle(Mode::Mtvp);
        c.contexts = 4;
        c.spawn_latency = lat;
        configs.push((format!("mtvp@{lat}"), c));
    }
    let sweep = tiny(&["vpr r"], &configs);
    let fast = sweep.speedup("vpr r", "mtvp@1", "base").unwrap();
    let slow = sweep.speedup("vpr r", "mtvp@16", "base").unwrap();
    assert!(
        fast >= slow - 2.0,
        "cheaper spawns should not lose: 1-cycle {fast:.1}% vs 16-cycle {slow:.1}%"
    );
}

#[test]
fn fig3_realistic_mtvp_beats_stvp_on_chases() {
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("stvp".to_string(), SimConfig::new(Mode::Stvp)),
        ("mtvp8".to_string(), SimConfig::new(Mode::Mtvp)),
    ];
    let sweep = tiny(&["vpr r", "twolf"], &configs);
    for bench in ["vpr r", "twolf"] {
        let stvp = sweep.speedup(bench, "stvp", "base").unwrap();
        let mtvp = sweep.speedup(bench, "mtvp8", "base").unwrap();
        assert!(mtvp > stvp, "{bench}: mtvp8 {mtvp:.1}% <= stvp {stvp:.1}%");
        assert!(mtvp > 50.0, "{bench}: mtvp8 too weak: {mtvp:.1}%");
    }
}

#[test]
fn fig4_no_stall_fetch_is_not_better() {
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("sfp".to_string(), SimConfig::new(Mode::Mtvp)),
        ("nostall".to_string(), SimConfig::new(Mode::MtvpNoStall)),
    ];
    let sweep = tiny(&["mcf", "vpr r", "twolf", "gap"], &configs);
    let sfp = sweep.geomean_speedup(Some(Suite::Int), "sfp", "base");
    let nostall = sweep.geomean_speedup(Some(Suite::Int), "nostall", "base");
    assert!(
        sfp >= nostall - 5.0,
        "single fetch path ({sfp:.1}%) should not lose to no-stall ({nostall:.1}%)"
    );
}

#[test]
fn fig5_alternate_values_exist() {
    let configs = vec![("mtvp8".to_string(), SimConfig::new(Mode::Mtvp))];
    let sweep = tiny(&["parser", "swim"], &configs);
    // The biased two-valued benchmarks must at least show candidate
    // multiplicity potential in the predictor.
    let total: u64 = sweep
        .cells
        .iter()
        .map(|c| c.stats.vp.wrong_but_alternate_held + c.stats.vp.followed_wrong)
        .sum();
    let _ = total; // plumbing check: counters exist and the sweep runs
    assert_eq!(sweep.cells.len(), 2);
}

#[test]
fn fig6_dependence_separates_wide_window_from_mtvp() {
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("wide".to_string(), SimConfig::new(Mode::WideWindow)),
        ("mtvp".to_string(), SimConfig::new(Mode::Mtvp)),
    ];
    let sweep = tiny(&["mcf", "mgrid"], &configs);
    // Dependent integer chase: MTVP >> wide window.
    let mcf_wide = sweep.speedup("mcf", "wide", "base").unwrap();
    let mcf_mtvp = sweep.speedup("mcf", "mtvp", "base").unwrap();
    assert!(
        mcf_mtvp > mcf_wide + 20.0,
        "mcf: mtvp {mcf_mtvp:.1}% should dominate wide {mcf_wide:.1}%"
    );
    // Independent FP work: the wide window at least matches MTVP.
    let fp_wide = sweep.speedup("mgrid", "wide", "base").unwrap();
    let fp_mtvp = sweep.speedup("mgrid", "mtvp", "base").unwrap();
    assert!(
        fp_wide > fp_mtvp - 10.0,
        "mgrid: wide {fp_wide:.1}% should be competitive with mtvp {fp_mtvp:.1}%"
    );
}

#[test]
fn multivalue_rescues_biased_benchmarks() {
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("single".to_string(), SimConfig::new(Mode::Mtvp)),
        ("multi".to_string(), SimConfig::new(Mode::MultiValue)),
    ];
    let sweep = tiny(&["swim"], &configs);
    let single = sweep.speedup("swim", "single", "base").unwrap();
    let multi = sweep.speedup("swim", "multi", "base").unwrap();
    assert!(
        multi > single,
        "multi-value ({multi:.1}%) should beat single-value ({single:.1}%) on swim"
    );
}

#[test]
fn store_buffer_size_matters_on_chases() {
    let mut configs = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for size in [8usize, 512] {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.store_buffer = size;
        configs.push((format!("sb{size}"), c));
    }
    let sweep = tiny(&["mcf"], &configs);
    let small = sweep.speedup("mcf", "sb8", "base").unwrap();
    let large = sweep.speedup("mcf", "sb512", "base").unwrap();
    assert!(
        large >= small - 2.0,
        "bigger store buffer should not hurt: sb8 {small:.1}% vs sb512 {large:.1}%"
    );
}
