//! Differential tests for the microarchitecture framework.
//!
//! The staged cycle loop (`StagedCore::cycle`, statically dispatched
//! through the `StageSet` trait family) must be an exact refactor of the
//! hand-wired stage sequence it replaced: same `PipeStats` bit for bit,
//! same traced event stream, on every registry program and on arbitrary
//! valid configurations. `run_hand_wired()` preserves the pre-framework
//! wiring (direct method calls, no trait dispatch) precisely so this
//! file can prove the framework changes nothing.

use mtvp_engine::{CoreKind, Mode, PredictorKind, Scale, SelectorKind, SimConfig};
use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::Program;
use mtvp_obs::RingTracer;
use mtvp_pipeline::{Core, InOrderMachine, Machine};
use mtvp_workloads::synth::{random_program, SynthParams};
use mtvp_workloads::{kernels, suite};
use proptest::prelude::*;
use std::sync::Arc;

/// Every program in the registry: the 32 suite workloads plus the
/// standalone kernels and the synth-generator seeds `lint --all` covers.
fn registry_programs(scale: Scale) -> Vec<Program> {
    let mut programs: Vec<Program> = suite().into_iter().map(|w| w.build(scale)).collect();
    programs.push(kernels::matmul(8));
    let bytes: Vec<u8> = (0..400).map(|i| (i * 131 % 256) as u8).collect();
    programs.push(kernels::histogram(&bytes));
    programs.push(kernels::string_search(
        b"the quick brown fox jumps over the lazy dog the end",
        b"the",
    ));
    programs.extend((1..=4).map(|s| random_program(s, SynthParams::default())));
    programs
}

fn reference(program: &Program) -> (u64, Arc<mtvp_isa::trace::Trace>) {
    let mut bus = SimpleBus::new();
    let mut interp = Interp::new(program);
    let (res, trace) = interp.run_traced(&mut bus, 20_000_000);
    assert!(res.halted, "{} reference did not halt", program.name);
    (res.dyn_instrs, Arc::new(trace))
}

/// Run `cfg` on `program` through the trait-dispatched cycle loop and
/// through the hand-wired reference wiring, with tracing enabled, and
/// assert the two are indistinguishable: identical `PipeStats`,
/// identical retained event stream, identical aggregated registry.
fn assert_dispatch_is_invisible(
    program: &Program,
    cfg: &SimConfig,
    dyn_instrs: u64,
    trace: &Arc<mtvp_isa::trace::Trace>,
    label: &str,
) {
    let mut framework = Machine::<RingTracer>::build_core(
        cfg.to_pipeline_config(),
        cfg.to_mem_config(),
        program,
        Some(trace.clone()),
        RingTracer::new(1 << 16),
        true,
    );
    let mut hand_wired = Machine::<RingTracer>::build_core(
        cfg.to_pipeline_config(),
        cfg.to_mem_config(),
        program,
        Some(trace.clone()),
        RingTracer::new(1 << 16),
        true,
    );
    let a = framework.run();
    let b = hand_wired.run_hand_wired();
    assert!(a.halted, "{}: {label} did not halt", program.name);
    assert_eq!(
        a.committed, dyn_instrs,
        "{}: {label} committed-count mismatch",
        program.name
    );
    assert_eq!(a, b, "{}: {label} PipeStats diverged", program.name);
    let ta = framework.into_tracer();
    let tb = hand_wired.into_tracer();
    assert_eq!(ta.dropped(), tb.dropped(), "{}: {label}", program.name);
    assert!(
        ta.events().eq(tb.events()),
        "{}: {label} traced event streams diverged",
        program.name
    );
    assert_eq!(
        ta.registry(),
        tb.registry(),
        "{}: {label} trace registries diverged",
        program.name
    );
}

/// The framework-composed default machine is bit-identical to the
/// hand-wired wiring on every registry program, in baseline and MTVP
/// modes.
#[test]
fn staged_cycle_matches_hand_wired_on_all_registry_programs() {
    let mtvp = {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.selector = SelectorKind::Always;
        c.spawn_latency = 1;
        c
    };
    let baseline = SimConfig::new(Mode::Baseline);
    let programs = registry_programs(Scale::Tiny);
    assert_eq!(programs.len(), 39, "registry program count changed");
    for program in &programs {
        let (dyn_instrs, trace) = reference(program);
        assert_dispatch_is_invisible(program, &baseline, dyn_instrs, &trace, "baseline");
        assert_dispatch_is_invisible(program, &mtvp, dyn_instrs, &trace, "mtvp8");
    }
}

/// The second core module has no hand-wired twin (`run_hand_wired` is
/// deliberately only offered on the default stage set), so its contract
/// is architectural: agree with the reference interpreter, be
/// deterministic, and never speculate at the thread level.
#[test]
fn in_order_core_matches_reference_and_is_deterministic() {
    let cfg = SimConfig::in_order();
    cfg.validate().expect("in_order() must validate");
    let bytes: Vec<u8> = (0..400).map(|i| (i * 131 % 256) as u8).collect();
    let mut programs = vec![
        kernels::matmul(8),
        kernels::histogram(&bytes),
        kernels::string_search(b"abracadabra abracadabra", b"cad"),
    ];
    programs.extend((10..14).map(|s| random_program(s, SynthParams::default())));
    for wl in suite() {
        if ["mcf", "gzip g", "mesa", "equake"].contains(&wl.name) {
            programs.push(wl.build(Scale::Tiny));
        }
    }
    for program in &programs {
        let (dyn_instrs, trace) = reference(program);
        let mut first = InOrderMachine::<RingTracer>::build_core(
            cfg.to_pipeline_config(),
            cfg.to_mem_config(),
            program,
            Some(trace.clone()),
            RingTracer::new(1 << 16),
            true,
        );
        let mut second = InOrderMachine::<RingTracer>::build_core(
            cfg.to_pipeline_config(),
            cfg.to_mem_config(),
            program,
            Some(trace.clone()),
            RingTracer::new(1 << 16),
            true,
        );
        let a = first.run();
        let b = second.run();
        assert!(a.halted, "{}: in-order did not halt", program.name);
        assert_eq!(a.committed, dyn_instrs, "{}", program.name);
        assert_eq!(a, b, "{}: in-order run is not deterministic", program.name);
        first
            .check_regfile()
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        assert!(
            first
                .into_tracer()
                .events()
                .eq(second.into_tracer().events()),
            "{}: in-order traced event streams diverged",
            program.name
        );
        // A scalar in-order pipe never runs ahead of the program order,
        // so no thread-level speculation statistics may appear.
        assert_eq!(a.vp.mtvp_spawns, 0, "{}", program.name);
        assert_eq!(a.vp.stvp_used, 0, "{}", program.name);
        assert_eq!(a.peak_contexts, 1, "{}", program.name);
    }
}

/// The engine-level core axis: the same benchmark through `run_program`
/// on both cores produces validated runs, with the in-order core slower.
#[test]
fn both_cores_run_through_the_engine() {
    let wl = suite().into_iter().find(|w| w.name == "mcf").unwrap();
    let program = wl.build(Scale::Tiny);
    let ooo = mtvp_engine::run_program(&SimConfig::new(Mode::Baseline), &program);
    let inorder = mtvp_engine::run_program(&SimConfig::in_order(), &program);
    assert!(ooo.stats.halted && inorder.stats.halted);
    assert_eq!(ooo.stats.committed, inorder.stats.committed);
    assert!(
        inorder.stats.cycles > ooo.stats.cycles,
        "a scalar in-order core cannot outrun the 8-wide OoO machine \
         (inorder {} vs ooo {} cycles)",
        inorder.stats.cycles,
        ooo.stats.cycles
    );
}

/// One valid `SimConfig` from arbitrary raw knobs: pick every axis from
/// the generated values, then repair the combinations `validate()`
/// rejects (the same legality rules scenario expansion enforces).
#[allow(clippy::too_many_arguments)]
fn config_from_raw(
    mode_pick: u8,
    core_pick: u8,
    contexts_pick: u8,
    predictor_pick: u8,
    selector_pick: u8,
    spawn_latency: u8,
    store_buffer_pick: u8,
    mshrs_pick: u8,
    prefetcher: bool,
    warm_start: bool,
) -> SimConfig {
    let modes = [
        Mode::Baseline,
        Mode::Stvp,
        Mode::Mtvp,
        Mode::MtvpNoStall,
        Mode::SpawnOnly,
        Mode::MultiValue,
        Mode::WideWindow,
    ];
    let mode = modes[mode_pick as usize % modes.len()];
    let in_order = core_pick.is_multiple_of(4) && mode == Mode::Baseline;
    let mut cfg = if in_order {
        SimConfig::in_order()
    } else {
        SimConfig::new(mode)
    };
    if !in_order {
        if matches!(mode, Mode::Mtvp | Mode::MtvpNoStall | Mode::SpawnOnly) {
            cfg.contexts = [2, 4, 8][contexts_pick as usize % 3];
        }
        if mode != Mode::Baseline && mode != Mode::WideWindow {
            let predictors = [
                PredictorKind::WangFranklin,
                PredictorKind::WangFranklinLiberal,
                PredictorKind::Dfcm,
                PredictorKind::Stride,
                PredictorKind::LastValue,
                PredictorKind::Oracle,
            ];
            cfg.predictor = predictors[predictor_pick as usize % predictors.len()];
            let selectors = [
                SelectorKind::Always,
                SelectorKind::IlpPred,
                SelectorKind::L3MissOracle,
            ];
            cfg.selector = selectors[selector_pick as usize % selectors.len()];
            cfg.spawn_latency = 1 + (spawn_latency as u64 % 16);
        }
    }
    cfg.store_buffer = [4, 16, 64, 128][store_buffer_pick as usize % 4];
    cfg.mshrs = [4, 16, 64][mshrs_pick as usize % 3];
    cfg.prefetcher = prefetcher;
    cfg.warm_start = warm_start;
    cfg.validate()
        .unwrap_or_else(|e| panic!("generator produced an invalid config: {e}"));
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // For arbitrary valid configurations the trait-dispatched loop and
    // the hand-wired loop remain bit-identical (stats and trace stream).
    #[test]
    fn staged_cycle_matches_hand_wired_on_random_configs(
        mode_pick in any::<u8>(),
        core_pick in any::<u8>(),
        contexts_pick in any::<u8>(),
        predictor_pick in any::<u8>(),
        selector_pick in any::<u8>(),
        spawn_latency in any::<u8>(),
        store_buffer_pick in any::<u8>(),
        mshrs_pick in any::<u8>(),
        prefetcher in any::<bool>(),
        warm_start in any::<bool>(),
        seed in 0u64..64
    ) {
        let cfg = config_from_raw(
            mode_pick, core_pick, contexts_pick, predictor_pick, selector_pick,
            spawn_latency, store_buffer_pick, mshrs_pick, prefetcher, warm_start,
        );
        let program = random_program(seed, SynthParams::default());
        let (dyn_instrs, trace) = reference(&program);
        match cfg.core {
            CoreKind::OutOfOrder => {
                assert_dispatch_is_invisible(&program, &cfg, dyn_instrs, &trace, "random");
            }
            CoreKind::InOrderScalar => {
                let mut a = InOrderMachine::build_core(
                    cfg.to_pipeline_config(), cfg.to_mem_config(), &program,
                    Some(trace.clone()), mtvp_obs::NullTracer, true,
                );
                let mut b = InOrderMachine::build_core(
                    cfg.to_pipeline_config(), cfg.to_mem_config(), &program,
                    Some(trace.clone()), mtvp_obs::NullTracer, true,
                );
                let sa = a.run();
                prop_assert_eq!(sa.committed, dyn_instrs);
                prop_assert_eq!(sa, b.run());
            }
        }
    }
}
