//! Differential test of the observability subsystem: the event stream a
//! traced MTVP run emits must agree with the `PipeStats` the run reports.
//! Every spawn the stats count appears as a `Spawn` event, and every
//! spawned child is eventually resolved — reconciled against the actual
//! load value or killed — except for the handful that can still be in
//! flight when the program halts.

use mtvp_engine::{
    chrome_trace, pipeview, run_program_traced, suite, Event, Mode, Scale, SelectorKind, SimConfig,
    TraceOptions,
};
use mtvp_engine::{RingTracer, RunResult};
use std::collections::HashSet;

fn traced_mtvp_run(opts: &TraceOptions) -> (RunResult, RingTracer) {
    let wl = suite().into_iter().find(|w| w.name == "mcf").unwrap();
    let program = wl.build(Scale::Tiny);
    let mut cfg = SimConfig::new(Mode::Mtvp);
    cfg.contexts = 4;
    cfg.selector = SelectorKind::Always;
    run_program_traced(&cfg, &program, opts)
}

#[test]
fn event_stream_matches_spawn_stats() {
    let (result, tracer) = traced_mtvp_run(&TraceOptions::default());
    let stats = &result.stats;
    assert!(stats.halted);
    assert!(stats.vp.mtvp_spawns > 0, "run must actually spawn threads");
    assert_eq!(
        tracer.dropped(),
        0,
        "default ring must hold a Tiny run in full"
    );

    let contexts = 4usize;
    let mut spawns = 0u64;
    let mut reconciles_correct = 0u64;
    let mut reconciles_wrong = 0u64;
    let mut kills_while_pending = 0u64;
    // Child contexts spawned but not yet reconciled or killed.
    let mut pending: HashSet<usize> = HashSet::new();

    for &(_, ev) in tracer.events() {
        match ev {
            Event::Spawn { parent, child, .. } => {
                spawns += 1;
                assert_ne!(parent, child);
                assert!(
                    pending.insert(child),
                    "context {child} spawned again before being resolved"
                );
            }
            Event::Reconcile { child, correct, .. } => {
                assert!(
                    pending.remove(&child),
                    "context {child} reconciled without a matching spawn"
                );
                if correct {
                    reconciles_correct += 1;
                } else {
                    reconciles_wrong += 1;
                }
            }
            // A kill can hit a still-pending child (parent squashed, or
            // wrong value at reconcile time) or an already-reconciled
            // one; only the former closes a spawn.
            Event::Kill { ctx, .. } if pending.remove(&ctx) => {
                kills_while_pending += 1;
            }
            _ => {}
        }
    }

    // Every spawn the stats report is visible in the stream.
    let expected_spawns =
        stats.vp.mtvp_spawns + stats.vp.multi_value_spawns + stats.vp.spawn_only_spawns;
    assert_eq!(spawns, expected_spawns);

    // Every spawn is resolved by a reconcile or a kill, except children
    // still in flight at halt (at most one per non-primary context).
    assert!(pending.len() < contexts, "too many unresolved spawns");
    assert_eq!(
        reconciles_correct + reconciles_wrong + kills_while_pending + pending.len() as u64,
        spawns
    );

    // Value-correct reconciles are exactly the stats' correct spawns.
    assert_eq!(reconciles_correct, stats.vp.mtvp_correct);

    // The registry's event counters agree with the stream accounting.
    assert_eq!(tracer.registry().counter("events.spawn"), spawns);
}

#[test]
fn exporters_render_the_stream() {
    // Window the ring to the first few thousand cycles: plenty of uop
    // lifecycles for both exporters, and it exercises `--trace-window`.
    let opts = TraceOptions {
        window: Some((0, 4096)),
        ..TraceOptions::default()
    };
    let (_, tracer) = traced_mtvp_run(&opts);

    // Chrome trace output must be well-formed JSON with an event array.
    let chrome = chrome_trace(tracer.events());
    let doc: serde_json::Value = serde_json::from_str(&chrome).expect("chrome trace parses");
    let events = &doc["traceEvents"];
    assert!(
        matches!(events, serde_json::Value::Seq(v) if !v.is_empty()),
        "traceEvents must be a non-empty array"
    );

    // The pipeview renders at least a header, a ruler and some lanes.
    let view = pipeview(tracer.events(), 32);
    assert!(view.starts_with("pipeview:"), "pipeview emits its header");
    assert!(view.lines().count() > 2);
}
