//! Property tests for the cluster's consistent-hash partitioner.
//!
//! The coordinator trusts [`mtvp_engine::partition`] for two load-bearing
//! guarantees: the partition is a true partition (complete and disjoint
//! for *any* cell set and worker count), and resizing the fabric moves
//! only O(cells / n) cells — with every moved cell landing on the new
//! worker, the exact rendezvous-hashing property the re-shard path relies
//! on. These hold for arbitrary inputs, so they are stated as properties.

use mtvp_engine::key_of;
use mtvp_engine::partition::{owner_of, partition};
use mtvp_engine::JobKey;
use proptest::prelude::*;

/// Distinct content-addressed keys from arbitrary generated seeds.
fn keys_from(seeds: &[u64]) -> Vec<JobKey> {
    let mut seen = std::collections::HashSet::new();
    seeds
        .iter()
        .map(|s| key_of(&format!("prop-cell-{s}")))
        .filter(|k| seen.insert(k.hex().to_string()))
        .collect()
}

/// Worker identities in the shape the coordinator uses (host:port).
fn workers(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{}:7077", i + 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Every key lands in exactly one bucket, buckets agree with
    // `owner_of`, and the assignment is deterministic.
    #[test]
    fn partition_is_complete_and_disjoint(
        seeds in prop::collection::vec(any::<u64>(), 1..300),
        n in 1usize..12
    ) {
        let ks = keys_from(&seeds);
        let ws = workers(n);
        let buckets = partition(&ks, &ws);
        prop_assert_eq!(buckets.len(), n);
        let mut seen = vec![0u32; ks.len()];
        for (w, bucket) in buckets.iter().enumerate() {
            for &i in bucket {
                prop_assert!(i < ks.len());
                seen[i] += 1;
                prop_assert_eq!(owner_of(&ks[i], &ws), w);
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each key in exactly one bucket");
        // Deterministic: a second evaluation is identical.
        prop_assert_eq!(partition(&ks, &ws), buckets);
    }

    // Growing N -> N+1 workers moves O(cells/N) keys, and every moved
    // key moves TO the new worker (survivor-to-survivor moves are
    // impossible under rendezvous hashing).
    #[test]
    fn growth_moves_few_keys_and_only_to_the_new_worker(
        seeds in prop::collection::vec(any::<u64>(), 1..300),
        n in 1usize..10
    ) {
        let ks = keys_from(&seeds);
        let ws = workers(n);
        let grown = workers(n + 1);
        let mut moved = 0usize;
        for k in &ks {
            let before = owner_of(k, &ws);
            let after = owner_of(k, &grown);
            if before != after {
                prop_assert_eq!(after, n); // moved keys land on the new worker
                moved += 1;
            }
        }
        // Expected movement is cells/(n+1); bound it with slack that
        // still rules out modulo-style O(cells) reshuffles.
        let bound = (4 * ks.len()) / (n + 1) + 8;
        prop_assert!(moved <= bound, "moved {} of {} with n={}", moved, ks.len(), n);
    }

    // Removing one worker reassigns only that worker's keys; every
    // survivor keeps exactly what it had (the re-shard invariant).
    #[test]
    fn removal_touches_only_the_dead_workers_keys(
        seeds in prop::collection::vec(any::<u64>(), 1..300),
        n in 2usize..12,
        dead_pick in any::<u64>()
    ) {
        let ks = keys_from(&seeds);
        let ws = workers(n);
        let dead = (dead_pick % n as u64) as usize;
        let survivors: Vec<String> = ws
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != dead)
            .map(|(_, w)| w.clone())
            .collect();
        for k in &ks {
            let before = owner_of(k, &ws);
            if before == dead {
                continue; // reassigned anywhere among survivors — fine
            }
            let after = owner_of(k, &survivors);
            prop_assert_eq!(&ws[before], &survivors[after]); // survivors keep their keys
        }
    }
}
