//! Differential test: the serving layer is a transparent wrapper around
//! the experiment engine.
//!
//! For every cell of the built-in `smoke` scenario, a `POST /run` over a
//! real socket must return `PipeStats` JSON *byte-identical* to what the
//! engine serializes when called directly — cold (server simulates) and
//! warm (server answers from its disk cache). The vendored serde `Value`
//! keeps insertion order and prints deterministically, so string
//! comparison of the serialized subtree is exact, not approximate.

use mtvp_engine::{builtin, suite, CacheMode, Engine, EngineOptions};
use mtvp_serve::loadgen::http_request;
use mtvp_serve::{ServeOptions, Server};
use serde::{Serialize, Value};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mtvp-serve-diff-{tag}-{}", std::process::id()))
}

#[test]
fn run_responses_match_the_engine_byte_for_byte() {
    let dir = scratch("cache");
    std::fs::remove_dir_all(&dir).ok();
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 32,
        cache: CacheMode::Disk(dir.clone()),
        request_timeout_ms: 120_000,
        read_timeout_ms: 10_000,
        peers: Vec::new(),
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    // The reference engine computes every cell independently, cache off,
    // so the comparison cannot be satisfied by a shared cache file.
    let reference = Engine::new(EngineOptions {
        cache: CacheMode::Off,
        jobs: Some(1),
        shard: None,
        progress: false,
    });

    let scenario = builtin("smoke").expect("smoke scenario");
    let scale = scenario.scale_or(None);
    let configs = scenario.configs().expect("smoke expands");
    let benches: Vec<&str> = suite()
        .iter()
        .filter(|w| scenario.keeps(w))
        .map(|w| w.name)
        .collect();
    assert!(!benches.is_empty() && !configs.is_empty());

    let mut cells = 0;
    for bench in &benches {
        for (label, cfg) in &configs {
            cells += 1;
            let (direct, _) = reference
                .run_cell(bench, cfg, scale)
                .unwrap_or_else(|e| panic!("direct {bench}/{label}: {e}"));
            let expected_stats = direct.stats.to_value().to_string();

            let body = Value::Map(vec![
                ("bench".to_string(), Value::Str(bench.to_string())),
                (
                    "scale".to_string(),
                    Value::Str(mtvp_engine::key::scale_tag(scale).to_string()),
                ),
                ("config".to_string(), cfg.to_value()),
            ])
            .to_string();

            for (pass, want_cached) in [("cold", false), ("warm", true)] {
                let (status, text) = http_request(&addr, "POST", "/run", Some(&body), 120_000)
                    .unwrap_or_else(|e| panic!("{pass} {bench}/{label}: {e}"));
                assert_eq!(status, 200, "{pass} {bench}/{label}: {text}");
                let v: Value = serde_json::from_str(&text).expect("response json");
                assert_eq!(
                    v.get("cached").and_then(Value::as_bool),
                    Some(want_cached),
                    "{pass} {bench}/{label}"
                );
                assert_eq!(
                    v.get("bench").and_then(Value::as_str),
                    Some(*bench),
                    "{pass} {bench}/{label}"
                );
                assert_eq!(
                    v.get("dyn_instrs").and_then(Value::as_u64),
                    Some(direct.dyn_instrs),
                    "{pass} {bench}/{label}"
                );
                let got_stats = v
                    .get("stats")
                    .unwrap_or_else(|| panic!("{pass} {bench}/{label}: no stats"))
                    .to_string();
                assert_eq!(
                    got_stats, expected_stats,
                    "{pass} {bench}/{label}: stats differ from the direct engine run"
                );
                // The round-tripped config is the one that was simulated.
                assert_eq!(
                    v.get("config").map(|c| c.to_string()),
                    Some(cfg.to_value().to_string()),
                    "{pass} {bench}/{label}"
                );
            }
        }
    }
    assert!(cells >= 4, "smoke scenario covers at least a 2x2 grid");

    // The server's cache now holds every smoke cell.
    let (status, text) = http_request(&addr, "GET", "/cache/stats", None, 10_000).expect("stats");
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&text).expect("json");
    assert_eq!(v.get("enabled").and_then(Value::as_bool), Some(true));
    assert_eq!(
        v.get("cells").and_then(Value::as_u64),
        Some(cells as u64),
        "{text}"
    );

    handle.shutdown();
    let report = join.join().expect("join");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.requests, (cells * 2 + 1) as u64);
    std::fs::remove_dir_all(&dir).ok();
}
