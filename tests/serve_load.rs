//! Load hardening: a deliberately undersized server (2 workers, 4-deep
//! queue) vs 32 closed-loop clients sending identical `/run` jobs with
//! the cache off.
//!
//! What must hold under overload:
//!
//! - every response is 200 or 503 — backpressure, never an error class
//!   the client can't retry on;
//! - zero transport resets — rejected connections are drained before the
//!   503 so no RST reaches the client;
//! - job ids are strictly monotonic per client — one atomic id source
//!   behind every accepted request;
//! - the coalesce-hit counter is positive — with every client asking for
//!   the same cell and the cache off, overlapping executions must share.

use mtvp_engine::CacheMode;
use mtvp_serve::loadgen::{self, LoadgenOptions};
use mtvp_serve::{ServeOptions, Server};
use serde::Value;

/// Counter value from the `/metrics` registry subtree (serialized as a
/// sequence of `[name, value]` pairs).
fn registry_counter(metrics: &Value, name: &str) -> u64 {
    let Some(Value::Seq(counters)) = metrics.get("registry").and_then(|r| r.get("counters")) else {
        panic!("no registry.counters in {metrics}");
    };
    counters
        .iter()
        .filter_map(|pair| match pair {
            Value::Seq(kv) if kv.len() == 2 => Some((kv[0].as_str()?, kv[1].as_u64()?)),
            _ => None,
        })
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn overloaded_server_degrades_gracefully() {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        cache: CacheMode::Off,
        request_timeout_ms: 120_000,
        read_timeout_ms: 10_000,
        peers: Vec::new(),
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    // Identical jobs: with the cache off, deduplication can only come
    // from in-flight coalescing. MTVP x4 is the slowest smoke-sized cell,
    // maximizing the overlap window between the two workers.
    let body = r#"{"bench": "mcf", "scale": "tiny",
                   "config": {"mode": "mtvp", "contexts": 4, "oracle": true}}"#;
    let report = loadgen::run(&LoadgenOptions {
        addr: addr.clone(),
        clients: 32,
        requests_per_client: 3,
        path: "/run".to_string(),
        body: Some(body.to_string()),
        timeout_ms: 120_000,
    });

    assert_eq!(report.sent, 96);
    assert_eq!(report.resets, 0, "transport resets under overload");
    for (status, n) in &report.statuses {
        assert!(
            *status == 200 || *status == 503,
            "unexpected status {status} ({n} responses)"
        );
    }
    assert!(
        report.status_count(200) >= 2,
        "some requests must get through: {:?}",
        report.statuses
    );
    let total: u64 = report.statuses.iter().map(|(_, n)| n).sum();
    assert_eq!(total, report.sent, "every request got an HTTP response");

    // Ids are allocated from one monotonic counter, so each client's
    // sequential successes observe strictly increasing ids.
    for (client, ids) in report.client_job_ids.iter().enumerate() {
        for pair in ids.windows(2) {
            assert!(
                pair[0] < pair[1],
                "client {client} saw non-monotonic job ids {:?}",
                ids
            );
        }
    }

    let (status, text) =
        loadgen::http_request(&addr, "GET", "/metrics", None, 10_000).expect("metrics");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&text).expect("metrics json");
    assert!(
        registry_counter(&metrics, "serve.coalesce.hits") > 0,
        "identical concurrent jobs never coalesced: {text}"
    );
    assert_eq!(
        registry_counter(&metrics, "serve.responses.200"),
        report.status_count(200)
    );
    let highwater = metrics
        .get("queue")
        .and_then(|q| q.get("highwater"))
        .and_then(Value::as_u64)
        .expect("queue highwater");
    assert!((1..=4).contains(&highwater), "highwater {highwater}");

    handle.shutdown();
    let drain = join.join().expect("join");
    assert_eq!(
        drain.rejected,
        report.status_count(503),
        "every 503 came from queue backpressure"
    );
    assert!(drain.coalesce_hits > 0);
}
