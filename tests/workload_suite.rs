//! Every SPEC-like kernel runs to completion — architecturally validated —
//! on the baseline machine and on an aggressive MTVP machine.

use mtvp_engine::{run_program, Mode, Scale, SimConfig};
use mtvp_workloads::suite;

#[test]
fn all_kernels_complete_on_baseline() {
    for wl in suite() {
        let program = wl.build(Scale::Tiny);
        let r = run_program(&SimConfig::new(Mode::Baseline), &program);
        assert!(r.stats.halted, "{} did not halt", wl.name);
        assert_eq!(r.stats.committed, r.dyn_instrs, "{} commit count", wl.name);
    }
}

#[test]
fn all_kernels_complete_on_mtvp8() {
    for wl in suite() {
        let program = wl.build(Scale::Tiny);
        let mut cfg = SimConfig::new(Mode::Mtvp);
        cfg.contexts = 8;
        let r = run_program(&cfg, &program);
        assert!(r.stats.halted, "{} did not halt under mtvp8", wl.name);
        assert_eq!(
            r.stats.committed, r.dyn_instrs,
            "{} commit count under mtvp8",
            wl.name
        );
    }
}

#[test]
fn all_kernels_complete_on_wide_window() {
    for wl in suite().into_iter().take(6) {
        let program = wl.build(Scale::Tiny);
        let r = run_program(&SimConfig::new(Mode::WideWindow), &program);
        assert!(r.stats.halted, "{} did not halt on wide window", wl.name);
    }
}
