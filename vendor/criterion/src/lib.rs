//! Minimal vendored `criterion` shim: a plain timing harness with the
//! `criterion_group!`/`criterion_main!`/`bench_function` API shape, so
//! `cargo bench` runs every registered benchmark and prints mean
//! time-per-iteration.

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {name:<40} {per_iter:>12.3?}/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Passed to each benchmark closure; times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions under one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
