//! Minimal vendored `proptest` shim.
//!
//! Runs each property over a fixed number of deterministically generated
//! random cases (no shrinking). Supports the API surface this workspace
//! uses: the `proptest!` macro with `ident: Type` and `ident in strategy`
//! argument forms, `any::<T>()`, integer-range strategies, `prop_map`,
//! tuple strategies, `prop::collection::vec`, `prop_assert*!`,
//! `prop_assume!`, and `ProptestConfig::with_cases`.

/// Test-runner plumbing: configuration and the case generator.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the property's name so each test gets a stable,
        /// distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
}

/// `any::<T>()` and the trait behind typed `proptest!` arguments.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types that can be generated over their whole domain.
    pub trait Arbitrary: Sized {
        /// Generate one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The strategy behind `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and a length range.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Each `#[test] fn name(args) { .. }` becomes a
/// normal `#[test]` running the body over many generated argument sets.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $(#[test] fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $crate::__proptest_bind!(rng, $($args)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Bind one `proptest!` argument list entry to a generated value.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident, $a:ident : $t:ty) => {
        let $a: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $a:ident : $t:ty, $($rest:tt)+) => {
        let $a: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $a:ident in $s:expr) => {
        let $a = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident, $a:ident in $s:expr, $($rest:tt)+) => {
        let $a = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Assert inside a property; failure reports the case instead of panicking
/// straight away.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn typed_and_strategy_args_mix(a: u64, b in -50i64..50, v in prop::collection::vec(any::<bool>(), 0..10)) {
            prop_assume!(b != 0);
            prop_assert!((-50..50).contains(&b));
            prop_assert!(v.len() < 10);
            prop_assert_eq!(a.wrapping_add(0), a);
            prop_assert_ne!(b, 0);
        }

        #[test]
        fn prop_map_and_tuples(x in (0u64..1000).prop_map(|v| v * 2), pair in (0u32..10, 0u32..10)) {
            prop_assert!(x % 2 == 0, "x = {} must be even", x);
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }
    }
}
