//! Minimal vendored `rand` shim.
//!
//! Provides the small slice of the `rand 0.8` API this workspace uses:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen` for plain integer/bool draws. The
//! generator is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workload generators and tests rely on.

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Seed the generator from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable uniformly from their whole domain via [`Rng::gen`].
pub trait Standard {
    /// Draw a value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draw a value covering the type's whole domain.
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&x));
            let y: usize = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let z: u8 = rng.gen_range(0..100u8);
            assert!(z < 100);
        }
    }

    #[test]
    fn r#gen_covers_bool_both_ways() {
        let mut rng = SmallRng::seed_from_u64(3);
        let draws: Vec<bool> = (0..64).map(|_| rng.r#gen::<bool>()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
