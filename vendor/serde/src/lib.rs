//! Minimal vendored `serde` shim.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny value-tree serialization framework under the
//! `serde` name: `Serialize` lowers a type to a [`Value`], `Deserialize`
//! rebuilds it. The `serde_json` shim prints/parses `Value` as JSON.
//! Only the shapes this workspace actually uses are supported.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing serialized value (a JSON-like tree).
///
/// Integers are kept exact (`U64`/`I64` variants) so `u64` statistics
/// survive a round trip bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` to a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up `key` in an object value (helper for derived impls).
pub fn map_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error(format!("missing field `{key}`"))),
        other => Err(Error(format!(
            "expected object with field `{key}`, got {other}"
        ))),
    }
}

/// Expect a sequence of exactly `n` elements (helper for derived impls).
pub fn seq_get(v: &Value, n: usize) -> Result<&[Value], Error> {
    match v {
        Value::Seq(s) if s.len() == n => Ok(s),
        other => Err(Error(format!("expected {n}-element array, got {other}"))),
    }
}

/// Expect a string value (helper for derived enum impls).
pub fn str_get(v: &Value) -> Result<&str, Error> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(Error(format!("expected string, got {other}"))),
    }
}

impl Value {
    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(x) => i64::try_from(x).ok(),
            Value::I64(x) => Some(x),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean contents, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object field lookup (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Exact integer value as `i128`, if this is an integral number.
    fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::U64(x) => Some(x as i128),
            Value::I64(x) => Some(x as i128),
            Value::F64(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(x as i128),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Seq(s) => s.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::F64(x) if x.is_finite() => {
                // `{}` on f64 prints the shortest representation that
                // round-trips, so parsing it back is lossless.
                if x.fract() == 0.0 && x.abs() < 1.0e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::F64(_) => f.write_str("null"),
            Value::Str(s) => write_escaped(f, s),
            Value::Seq(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i128().ok_or_else(|| Error(format!("expected integer, got {v}")))?;
                <$t>::try_from(x).map_err(|_| Error(format!("integer {x} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i128().ok_or_else(|| Error(format!("expected integer, got {v}")))?;
                <$t>::try_from(x).map_err(|_| Error(format!("integer {x} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {v}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {v}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = seq_get(v, $n)?;
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = seq_get(v, N)?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(s) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        for x in [0u64, 1, u64::MAX, u64::MAX - 7] {
            let v = x.to_value();
            assert_eq!(u64::from_value(&v).unwrap(), x);
        }
        for x in [i64::MIN, -1, 0, 42] {
            let v = x.to_value();
            assert_eq!(i64::from_value(&v).unwrap(), x);
        }
    }

    #[test]
    fn display_is_json() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.to_string(), "{\"a\":1,\"b\":[true,null]}");
    }
}
