//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementations
//! for the in-tree `serde` shim.
//!
//! Supports exactly the shapes this workspace uses: structs with named
//! fields, tuple structs, unit structs, and enums whose variants all carry
//! no data. Generics and `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Named(String, Vec<String>),
    /// Tuple struct with `n` fields.
    Tuple(String, usize),
    /// Unit struct.
    Unit(String),
    /// Enum whose variants are all unit variants.
    Enum(String, Vec<String>),
}

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Split a token stream on commas that sit outside any `<...>` nesting.
/// (Parenthesized/bracketed groups are single token trees already.)
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes and a visibility qualifier from a token slice.
fn skip_attrs_and_vis(toks: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed attribute group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &toks[i..],
        }
    }
}

fn parse(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let toks = skip_attrs_and_vis(&toks);
    let kw = ident_of(&toks[0]).expect("struct/enum keyword");
    let name = ident_of(&toks[1]).expect("type name");
    if let Some(TokenTree::Punct(p)) = toks.get(2) {
        if p.as_char() == '<' {
            panic!("derive shim does not support generic types");
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_commas(g.stream())
                    .iter()
                    .filter_map(|chunk| {
                        let chunk = skip_attrs_and_vis(chunk);
                        chunk.first().and_then(ident_of)
                    })
                    .collect();
                Shape::Named(name, fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_commas(g.stream())
                    .iter()
                    .filter(|c| !skip_attrs_and_vis(c).is_empty())
                    .count();
                Shape::Tuple(name, arity)
            }
            _ => Shape::Unit(name),
        },
        "enum" => {
            let body = toks
                .iter()
                .find_map(|t| match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
                    _ => None,
                })
                .expect("enum body");
            let variants = split_top_commas(body)
                .iter()
                .filter_map(|chunk| {
                    let chunk = skip_attrs_and_vis(chunk);
                    if chunk.is_empty() {
                        return None;
                    }
                    if chunk.len() > 1 {
                        panic!("derive shim only supports unit enum variants");
                    }
                    ident_of(&chunk[0])
                })
                .collect();
            Shape::Enum(name, variants)
        }
        other => panic!("cannot derive for `{other}`"),
    }
}

/// Derive `serde::Serialize` (value-tree based shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse(input) {
        Shape::Named(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, n) => {
            let entries: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Unit(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree based shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse(input) {
        Shape::Named(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_get(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, n) => {
            let entries: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = ::serde::seq_get(v, {n})?;\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Unit(name) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match ::serde::str_get(v)? {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}
