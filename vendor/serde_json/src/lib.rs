//! Minimal vendored `serde_json` shim: prints and parses the in-tree
//! `serde::Value` tree as JSON.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
pub use serde::Error;

/// Serialize `value` to its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&Value::Str(k.clone()).to_string());
                out.push_str(": ");
                pretty(val, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}` at byte {start}")))
    }
}

/// Build a [`Value`] inline. Supports object literals with expression
/// values, array literals, and bare expressions implementing `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = json!({
            "name": "mcf",
            "ipc": 0.5,
            "big": u64::MAX,
            "list": [1u64, 2u64, 3u64],
            "flag": true,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["ipc"].as_f64(), Some(0.5));
        assert_eq!(back["big"].as_u64(), Some(u64::MAX));
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
